// Concurrency battery for the multi-client transport (DESIGN.md §7),
// run against BOTH readiness backends (epoll where compiled in, and the
// portable poll fallback — rpc/event_poller.h):
//  * N client threads hammer one ConcurrentServer with mixed scalar and
//    batch ops against a shared XMark database; every thread's query
//    results must equal the plaintext ground truth;
//  * a 256-connection soak: mostly-idle connections with a rotating hot
//    subset, ground-truth results throughout, and the idle sweep
//    reclaiming every abandoned session afterwards;
//  * cursors opened on one connection are invisible to every other;
//  * a client that disconnects mid-batch must not wedge the accept loop or
//    leak cursor-table entries;
//  * the accept loop pauses at the max_connections budget (backpressure)
//    and resumes as connections close;
//  * a client that stops *reading* parks its response tail on the session
//    (buffered write path), never a worker; a reader stalled past the
//    max_write_buffer budget is closed and its cursors reclaimed; drained
//    tails arrive byte-identical;
//  * graceful shutdown drains and closes every connection.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "filter/client_filter.h"
#include "query/advanced_engine.h"
#include "query/ground_truth.h"
#include "query/simple_engine.h"
#include "rpc/client.h"
#include "rpc/concurrent_server.h"
#include "rpc/event_poller.h"
#include "rpc/protocol.h"
#include "rpc/socket_channel.h"
#include "test_helpers.h"
#include "util/varint.h"
#include "xmark/generator.h"

namespace ssdb::rpc {
namespace {

using testing_helpers::BuildTestDb;
using testing_helpers::TestDb;

std::string SocketPath(const char* name) {
  return "/tmp/ssdb_concurrent_" + std::to_string(::getpid()) + "_" + name +
         ".sock";
}

std::vector<PollerBackend> AvailableBackends() {
  std::vector<PollerBackend> backends{PollerBackend::kPoll};
  if (EpollAvailable()) backends.push_back(PollerBackend::kEpoll);
  return backends;
}

// Shared XMark database plus a running ConcurrentServer over it.
struct ServerFixture {
  std::unique_ptr<TestDb> db;
  std::unique_ptr<ConcurrentServer> server;
  std::string path;

  ServerFixture(const char* name, PollerBackend backend,
                ConcurrentServerOptions options = {}) {
    xmark::GeneratorOptions gen;
    gen.target_bytes = 16 << 10;
    gen.seed = 7;
    db = BuildTestDb(xmark::GenerateAuctionDocument(gen).xml);
    path = SocketPath(name);
    auto listener = UnixServerSocket::Listen(path);
    SSDB_CHECK(listener.ok());
    if (options.threads == 0) options.threads = 4;
    options.poller = backend;
    server = std::make_unique<ConcurrentServer>(
        db->ring, db->server.get(), std::move(*listener), options);
    SSDB_CHECK(server->Start().ok());
    SSDB_CHECK(std::string(server->poller_name()) ==
               PollerBackendName(backend));
  }

  std::unique_ptr<RemoteServerFilter> Connect() {
    auto channel = ConnectUnix(path);
    SSDB_CHECK(channel.ok());
    return std::make_unique<RemoteServerFilter>(db->ring,
                                                std::move(*channel));
  }
};

// Spin until the server-side cursor table drains (close processing is
// asynchronous: the dispatcher must notice the dead fd first).
bool WaitForCursorCount(TestDb* db, uint64_t want, int rounds = 500) {
  for (int i = 0; i < rounds; ++i) {
    if (db->server->OpenCursorCount() == want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return db->server->OpenCursorCount() == want;
}

bool WaitForOpenConnections(ConcurrentServer* server, size_t want,
                            int rounds = 1000) {
  for (int i = 0; i < rounds; ++i) {
    if (server->Snapshot().open_connections == want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return server->Snapshot().open_connections == want;
}

template <typename Fn>
bool WaitForAtLeast(Fn value, uint64_t want, int rounds = 1000) {
  for (int i = 0; i < rounds; ++i) {
    if (value() >= want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return value() >= want;
}

class ConcurrentServerTest
    : public ::testing::TestWithParam<PollerBackend> {};

TEST_P(ConcurrentServerTest, ManyClientsMatchGroundTruth) {
  ServerFixture fixture("hammer", GetParam());
  const std::vector<std::string> queries = {
      "/site//person", "/site/people/person//city", "/site//bidder",
      "/site/*"};

  // Plaintext expectations, computed once up front.
  std::vector<std::set<uint32_t>> expected;
  for (const std::string& text : queries) {
    auto parsed = query::ParseQuery(text);
    ASSERT_TRUE(parsed.ok()) << text;
    auto truth = query::EvaluateGroundTruth(*parsed, fixture.db->doc);
    ASSERT_TRUE(truth.ok()) << text;
    expected.emplace_back(truth->begin(), truth->end());
  }
  // Scalar/batch baselines from the local filter (thread-safe by design).
  filter::ServerFilter* local = fixture.db->server.get();
  std::vector<gf::Elem> base_evals = *local->EvalAtBatch({1, 2, 3, 4}, 5);
  gf::RingElem base_share = *local->FetchShare(2);

  constexpr int kClients = 6;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto remote = fixture.Connect();
      filter::ClientFilter client(fixture.db->ring,
                                  prg::Prg(fixture.db->seed), remote.get());
      query::SimpleEngine simple(&client, &fixture.db->map);
      query::AdvancedEngine advanced(&client, &fixture.db->map);
      for (int round = 0; round < 2; ++round) {
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          query::Query q = *query::ParseQuery(queries[qi]);
          query::QueryEngine* engine =
              (c + round) % 2 == 0
                  ? static_cast<query::QueryEngine*>(&simple)
                  : static_cast<query::QueryEngine*>(&advanced);
          auto result =
              engine->Execute(q, query::MatchMode::kEquality, nullptr);
          ASSERT_TRUE(result.ok()) << queries[qi];
          std::set<uint32_t> actual;
          for (const auto& node : *result) actual.insert(node.pre);
          EXPECT_EQ(actual, expected[qi])
              << "client " << c << " diverged on " << queries[qi];
        }
        // Mixed scalar + batch ops interleaved with the engine traffic.
        EXPECT_EQ(*remote->EvalAtBatch({1, 2, 3, 4}, 5), base_evals);
        EXPECT_EQ(*remote->EvalAt(2, 5), base_evals[1]);
        EXPECT_EQ(*remote->FetchShare(2), base_share);
        EXPECT_EQ((*remote->FetchShareBatch({2, 2}))[1], base_share);
        EXPECT_FALSE(remote->GetNode(1u << 30).ok());  // errors transport
      }
      ASSERT_TRUE(remote->Shutdown().ok());
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(fixture.server->Snapshot().connections_accepted, (uint64_t)kClients);
  // Every client shut its own connection down; the server must survive all
  // of them and still accept new work.
  auto late = fixture.Connect();
  EXPECT_EQ(*late->NodeCount(), *local->NodeCount());
  ASSERT_TRUE(late->Shutdown().ok());
  fixture.server->Shutdown();
  EXPECT_EQ(fixture.server->Snapshot().connections_accepted,
            fixture.server->Snapshot().connections_closed);
}

// The high-connection soak: 256 mostly-idle connections, a rotating hot
// subset doing real share ops, ground truth throughout; afterwards the
// idle sweep must reclaim every session (cursors included) without any
// client closing cleanly.
TEST_P(ConcurrentServerTest, HighConnectionSoakAndIdleSweep) {
  ConcurrentServerOptions options;
  options.idle_timeout_seconds = 1;
  ServerFixture fixture("soak", GetParam(), options);
  constexpr size_t kConnections = 256;
  constexpr size_t kHot = 32;

  filter::ServerFilter* local = fixture.db->server.get();
  std::vector<gf::Elem> base_evals = *local->EvalAtBatch({1, 2, 3, 4}, 5);
  gf::RingElem base_share = *local->FetchShare(2);
  auto q = *query::ParseQuery("/site//person");
  auto truth = query::EvaluateGroundTruth(q, fixture.db->doc);
  ASSERT_TRUE(truth.ok());

  std::vector<std::unique_ptr<RemoteServerFilter>> conns;
  conns.reserve(kConnections);
  for (size_t i = 0; i < kConnections; ++i) {
    conns.push_back(fixture.Connect());
  }
  // Rotating hot subset: each round touches a different window of the
  // connection set while the rest stay parked in the poller. A window
  // that sat idle past the sweep may have been reclaimed — that is the
  // sweep doing its job; the op is retried on a fresh connection and the
  // ground truth must still hold.
  for (size_t round = 0; round < kConnections / kHot; ++round) {
    for (size_t i = round * kHot; i < (round + 1) * kHot; ++i) {
      auto evals = conns[i]->EvalAtBatch({1, 2, 3, 4}, 5);
      if (!evals.ok()) {
        conns[i] = fixture.Connect();
        evals = conns[i]->EvalAtBatch({1, 2, 3, 4}, 5);
      }
      ASSERT_TRUE(evals.ok()) << "connection " << i;
      EXPECT_EQ(*evals, base_evals) << "connection " << i;
      auto share = conns[i]->FetchShare(2);
      if (!share.ok()) {  // swept between the two ops on a stalled runner
        conns[i] = fixture.Connect();
        share = conns[i]->FetchShare(2);
      }
      ASSERT_TRUE(share.ok()) << "connection " << i;
      EXPECT_EQ(*share, base_share) << "connection " << i;
    }
    // One full engine query per round, against the plaintext answer.
    filter::ClientFilter client(fixture.db->ring, prg::Prg(fixture.db->seed),
                                conns[round * kHot].get());
    query::AdvancedEngine engine(&client, &fixture.db->map);
    auto result = engine.Execute(q, query::MatchMode::kEquality, nullptr);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->size(), truth->size()) << "round " << round;
  }

  // Park cursors on a few fresh connections and abandon everything: the
  // idle sweep alone must close all sessions and reclaim the cursors.
  auto root = *local->Root();
  std::vector<std::unique_ptr<RemoteServerFilter>> cursor_conns;
  for (int i = 0; i < 4; ++i) {
    cursor_conns.push_back(fixture.Connect());
    auto cursor =
        cursor_conns.back()->OpenDescendantCursor(root.pre, root.post);
    ASSERT_TRUE(cursor.ok());
    ASSERT_TRUE(cursor_conns.back()->NextNodes(*cursor, 2).ok());
  }
  EXPECT_GE(fixture.db->server->OpenCursorCount(), 4u);

  EXPECT_TRUE(WaitForOpenConnections(fixture.server.get(), 0));
  EXPECT_TRUE(WaitForCursorCount(fixture.db.get(), 0));
  EXPECT_GE(fixture.server->Snapshot().connections_idle_closed, kConnections);

  // The server survived sweeping its whole connection set and still
  // accepts new clients.
  auto survivor = fixture.Connect();
  EXPECT_EQ(*survivor->NodeCount(), *local->NodeCount());
  ASSERT_TRUE(survivor->Shutdown().ok());
  fixture.server->Shutdown();
  EXPECT_EQ(fixture.server->Snapshot().connections_accepted,
            fixture.server->Snapshot().connections_closed);
}

TEST_P(ConcurrentServerTest, BackpressurePausesAcceptAtBudget) {
  ConcurrentServerOptions options;
  options.threads = 2;
  options.max_connections = 2;
  ServerFixture fixture("budget", GetParam(), options);

  auto a = fixture.Connect();
  auto b = fixture.Connect();
  ASSERT_TRUE(a->Root().ok());
  ASSERT_TRUE(b->Root().ok());
  EXPECT_EQ(fixture.server->Snapshot().open_connections, 2u);

  // A third client connects at the socket level (listen backlog) but must
  // not be accepted while the budget is spent; its first request blocks.
  std::atomic<bool> served{false};
  std::thread third([&] {
    auto remote = fixture.Connect();
    auto root = remote->Root();
    EXPECT_TRUE(root.ok());
    served.store(true);
    EXPECT_TRUE(remote->Shutdown().ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(fixture.server->Snapshot().open_connections, 2u);
  EXPECT_FALSE(served.load());

  // Freeing one slot resumes the accept loop and the queued client gets
  // served.
  ASSERT_TRUE(a->Shutdown().ok());
  third.join();
  EXPECT_TRUE(served.load());
  ASSERT_TRUE(b->Shutdown().ok());
  fixture.server->Shutdown();
  EXPECT_EQ(fixture.server->Snapshot().connections_accepted, 3u);
  EXPECT_EQ(fixture.server->Snapshot().connections_closed, 3u);
}

TEST_P(ConcurrentServerTest, CursorsAreInvisibleAcrossConnections) {
  ServerFixture fixture("cursors", GetParam());
  auto a = fixture.Connect();
  auto b = fixture.Connect();
  auto root = a->Root();
  ASSERT_TRUE(root.ok());

  auto cursor_a = a->OpenDescendantCursor(root->pre, root->post);
  ASSERT_TRUE(cursor_a.ok());
  auto cursor_b = b->OpenDescendantCursor(root->pre, root->post);
  ASSERT_TRUE(cursor_b.ok());

  // The other connection's cursor id must look like a cursor that does not
  // exist — not readable, not closable.
  auto stolen = b->NextNodes(*cursor_a, 4);
  EXPECT_FALSE(stolen.ok());
  EXPECT_TRUE(stolen.status().IsNotFound());
  EXPECT_TRUE(b->CloseCursor(*cursor_a).ok());  // silently ignored
  auto own = a->NextNodes(*cursor_a, 4);
  ASSERT_TRUE(own.ok());
  EXPECT_FALSE(own->empty());

  // Both cursors drain fully and independently.
  size_t streamed_a = own->size();
  for (;;) {
    auto nodes = a->NextNodes(*cursor_a, 16);
    ASSERT_TRUE(nodes.ok());
    if (nodes->empty()) break;
    streamed_a += nodes->size();
  }
  size_t streamed_b = 0;
  for (;;) {
    auto nodes = b->NextNodes(*cursor_b, 16);
    ASSERT_TRUE(nodes.ok());
    if (nodes->empty()) break;
    streamed_b += nodes->size();
  }
  EXPECT_EQ(streamed_a, *fixture.db->server->NodeCount() - 1);
  EXPECT_EQ(streamed_a, streamed_b);
  EXPECT_EQ(fixture.db->server->OpenCursorCount(), 0u);
  ASSERT_TRUE(a->Shutdown().ok());
  ASSERT_TRUE(b->Shutdown().ok());
}

TEST_P(ConcurrentServerTest, MidBatchDisconnectCleansUpAndKeepsServing) {
  ServerFixture fixture("disconnect", GetParam());
  auto root = *fixture.db->server->Root();

  // Ten clients in a row abandon a half-read cursor by dying abruptly —
  // no CloseCursor, no shutdown handshake.
  for (int i = 0; i < 10; ++i) {
    auto doomed = fixture.Connect();
    auto cursor = doomed->OpenDescendantCursor(root.pre, root.post);
    ASSERT_TRUE(cursor.ok());
    ASSERT_TRUE(doomed->NextNodes(*cursor, 2).ok());
    EXPECT_GE(fixture.db->server->OpenCursorCount(), 1u);
    doomed.reset();  // closes the socket with the cursor still open
  }

  // The server must reclaim every abandoned cursor...
  EXPECT_TRUE(WaitForCursorCount(fixture.db.get(), 0));
  // ...and the accept loop must still be alive for new clients.
  auto survivor = fixture.Connect();
  filter::ClientFilter client(fixture.db->ring, prg::Prg(fixture.db->seed),
                              survivor.get());
  query::AdvancedEngine engine(&client, &fixture.db->map);
  auto q = *query::ParseQuery("/site//person");
  auto result = engine.Execute(q, query::MatchMode::kEquality, nullptr);
  ASSERT_TRUE(result.ok());
  auto truth = query::EvaluateGroundTruth(q, fixture.db->doc);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(result->size(), truth->size());
  ASSERT_TRUE(survivor->Shutdown().ok());

  EXPECT_EQ(fixture.server->Snapshot().connections_accepted, 11u);
  fixture.server->Shutdown();
  EXPECT_EQ(fixture.server->Snapshot().connections_closed, 11u);
}

TEST_P(ConcurrentServerTest, ShutdownUnblocksWorkerStalledOnPartialFrame) {
  ConcurrentServerOptions options;
  options.threads = 2;
  ServerFixture fixture("stall", GetParam(), options);
  auto channel = ConnectUnix(fixture.path);
  ASSERT_TRUE(channel.ok());
  // Two of the four frame-header bytes, then silence: the dispatcher hands
  // off the readable fd and the worker blocks awaiting the rest of the
  // frame.
  int fd = (*channel)->PollFd();
  const char partial[2] = {0x10, 0x00};
  ASSERT_EQ(::write(fd, partial, sizeof(partial)), 2);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Drain must not wait for the stalled client (or its 30s io timeout):
  // SHUT_RD turns the worker's blocked read into an immediate EOF.
  auto start = std::chrono::steady_clock::now();
  fixture.server->Shutdown();
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            5);
  EXPECT_EQ(fixture.server->Snapshot().connections_accepted, 1u);
  EXPECT_EQ(fixture.server->Snapshot().connections_closed, 1u);
}

// A client that stops reading its response must not park a worker: the
// unsent tail parks on the session (the EPOLLOUT buffered write path)
// while every worker keeps serving hot clients; a reader stalled past
// max_write_buffer is closed — cursors reclaimed — instead of buffering
// without bound; and a tail the client eventually drains arrives
// byte-identical, with the session re-armed for reads afterwards.
TEST_P(ConcurrentServerTest, SlowReaderBuffersThenBudgetCloses) {
  ConcurrentServerOptions options;
  options.threads = 2;
  options.so_sndbuf = 4096;            // tiny socket: force short writes
  options.max_write_buffer = 1 << 20;  // 1 MiB budget
  ServerFixture fixture("slowreader", GetParam(), options);
  filter::ServerFilter* local = fixture.db->server.get();
  auto root = *local->Root();
  gf::RingElem base_share = *local->FetchShare(2);
  std::vector<gf::Elem> base_evals = *local->EvalAtBatch({1, 2, 3, 4}, 5);

  // One encoded share entry, to size batches and verify flushed bytes.
  std::string entry;
  PutLengthPrefixed(&entry, fixture.db->ring.Serialize(base_share));
  // Overflows the socket buffer (stalls the write) but fits the budget...
  const size_t stall_count = (128 << 10) / entry.size() + 1;
  // ...and blows well past the budget at stall time.
  const size_t budget_count = (4 << 20) / entry.size() + 1;

  // Stalled reader: requests a large share batch, then reads nothing.
  Request fetch;
  fetch.op = Op::kFetchShareBatch;
  fetch.pres.assign(stall_count, 2);
  auto stalled = ConnectUnix(fixture.path);
  ASSERT_TRUE(stalled.ok());
  ASSERT_TRUE((*stalled)->Send(EncodeRequest(fetch)).ok());
  ASSERT_TRUE(
      WaitForAtLeast([&] { return fixture.server->Snapshot().write_stalls; }, 1));
  EXPECT_GT(fixture.server->Snapshot().bytes_buffered_peak, 0u);

  // With the stall outstanding, as many concurrent hot clients as there
  // are workers all get ground-truth answers — so no worker is parked on
  // the non-reading peer.
  std::vector<std::thread> hot;
  for (int c = 0; c < 2; ++c) {
    hot.emplace_back([&] {
      auto remote = fixture.Connect();
      for (int i = 0; i < 50; ++i) {
        auto evals = remote->EvalAtBatch({1, 2, 3, 4}, 5);
        ASSERT_TRUE(evals.ok());
        EXPECT_EQ(*evals, base_evals);
      }
      ASSERT_TRUE(remote->Shutdown().ok());
    });
  }
  for (std::thread& t : hot) t.join();

  // Budget hog: parks a cursor, then requests a batch whose unsent tail
  // exceeds max_write_buffer — the server closes it rather than buffer
  // without bound, and the close reclaims the cursor.
  auto hog = ConnectUnix(fixture.path);
  ASSERT_TRUE(hog.ok());
  Request open;
  open.op = Op::kOpenCursor;
  open.pre = root.pre;
  open.post = root.post;
  ASSERT_TRUE((*hog)->Send(EncodeRequest(open)).ok());
  ASSERT_TRUE((*hog)->Receive().ok());  // small response; read it
  EXPECT_GE(fixture.db->server->OpenCursorCount(), 1u);
  fetch.pres.assign(budget_count, 2);
  ASSERT_TRUE((*hog)->Send(EncodeRequest(fetch)).ok());
  ASSERT_TRUE(WaitForAtLeast(
      [&] { return fixture.server->Snapshot().write_budget_closed; }, 1));
  EXPECT_TRUE(WaitForCursorCount(fixture.db.get(), 0));

  // The stalled reader finally drains: every buffered byte arrives,
  // intact and in order.
  auto response = (*stalled)->Receive();
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->size(), 1 + stall_count * entry.size());
  EXPECT_EQ(static_cast<uint8_t>((*response)[0]), 1u);  // ok envelope
  for (size_t i = 0; i < stall_count; ++i) {
    ASSERT_EQ(response->compare(1 + i * entry.size(), entry.size(), entry), 0)
        << "entry " << i;
  }
  // The drained session is re-armed for reads: the same connection can
  // stall again — and this second park recycles the frame buffer the
  // first drain returned to the pool (the drain's Release strictly
  // precedes the read re-arm, which precedes the next request).
  fetch.pres.assign(stall_count, 2);
  ASSERT_TRUE((*stalled)->Send(EncodeRequest(fetch)).ok());
  ASSERT_TRUE(
      WaitForAtLeast([&] { return fixture.server->Snapshot().write_stalls; }, 3));
  response = (*stalled)->Receive();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->size(), 1 + stall_count * entry.size());
  Request count;
  count.op = Op::kNodeCount;
  ASSERT_TRUE((*stalled)->Send(EncodeRequest(count)).ok());
  EXPECT_TRUE((*stalled)->Receive().ok());

  (*stalled)->Close();
  fixture.server->Shutdown();
  EXPECT_EQ(fixture.server->Snapshot().connections_accepted,
            fixture.server->Snapshot().connections_closed);
  EXPECT_GE(fixture.server->Snapshot().write_stalls, 3u);
  EXPECT_EQ(fixture.server->Snapshot().bytes_buffered, 0u);
  EXPECT_GT(fixture.server->Snapshot().frames_reused, 0u);
}

// Soak (labelled slow): K stalled readers hold buffered response tails
// for the whole run while hot clients hammer; every hot op returns
// ground truth, nothing hangs, and all K tails drain intact at the end.
TEST_P(ConcurrentServerTest, SlowReaderSoakKeepsHotClientsServed) {
  ConcurrentServerOptions options;
  options.threads = 2;
  options.so_sndbuf = 4096;
  options.max_write_buffer = 8 << 20;
  ServerFixture fixture("slowsoak", GetParam(), options);
  filter::ServerFilter* local = fixture.db->server.get();
  gf::RingElem base_share = *local->FetchShare(2);
  std::vector<gf::Elem> base_evals = *local->EvalAtBatch({1, 2, 3, 4}, 5);

  std::string entry;
  PutLengthPrefixed(&entry, fixture.db->ring.Serialize(base_share));
  const size_t stall_count = (256 << 10) / entry.size() + 1;

  constexpr size_t kStalled = 4;
  Request fetch;
  fetch.op = Op::kFetchShareBatch;
  fetch.pres.assign(stall_count, 2);
  const std::string fetch_bytes = EncodeRequest(fetch);
  std::vector<std::unique_ptr<Channel>> stalled;
  for (size_t i = 0; i < kStalled; ++i) {
    auto channel = ConnectUnix(fixture.path);
    ASSERT_TRUE(channel.ok());
    ASSERT_TRUE((*channel)->Send(fetch_bytes).ok());
    stalled.push_back(std::move(*channel));
  }
  ASSERT_TRUE(WaitForAtLeast([&] { return fixture.server->Snapshot().write_stalls; },
                             kStalled));

  constexpr int kHotThreads = 2;
  std::vector<std::thread> hot;
  for (int c = 0; c < kHotThreads; ++c) {
    hot.emplace_back([&] {
      auto remote = fixture.Connect();
      for (int i = 0; i < 200; ++i) {
        auto evals = remote->EvalAtBatch({1, 2, 3, 4}, 5);
        ASSERT_TRUE(evals.ok());
        EXPECT_EQ(*evals, base_evals);
        auto share = remote->FetchShare(2);
        ASSERT_TRUE(share.ok());
        EXPECT_EQ(*share, base_share);
      }
      ASSERT_TRUE(remote->Shutdown().ok());
    });
  }
  for (std::thread& t : hot) t.join();

  // Every tail is still parked (nobody read a byte of them)...
  EXPECT_GE(fixture.server->Snapshot().write_stalls, kStalled);
  EXPECT_GT(fixture.server->Snapshot().bytes_buffered, 0u);
  // ...then drains intact.
  const size_t want = 1 + stall_count * entry.size();
  for (size_t i = 0; i < kStalled; ++i) {
    auto response = stalled[i]->Receive();
    ASSERT_TRUE(response.ok()) << "reader " << i;
    EXPECT_EQ(response->size(), want) << "reader " << i;
  }
  for (auto& channel : stalled) channel->Close();
  fixture.server->Shutdown();
  EXPECT_EQ(fixture.server->Snapshot().connections_accepted,
            fixture.server->Snapshot().connections_closed);
  EXPECT_EQ(fixture.server->Snapshot().bytes_buffered, 0u);
}

TEST_P(ConcurrentServerTest, GracefulShutdownClosesIdleConnections) {
  ServerFixture fixture("drain", GetParam());
  auto a = fixture.Connect();
  auto b = fixture.Connect();
  EXPECT_TRUE(a->Root().ok());
  EXPECT_TRUE(b->Root().ok());

  fixture.server->Shutdown();
  EXPECT_EQ(fixture.server->Snapshot().connections_accepted, 2u);
  EXPECT_EQ(fixture.server->Snapshot().connections_closed, 2u);
  EXPECT_EQ(fixture.server->Snapshot().open_connections, 0u);
  // The socket file is gone: no new connections.
  EXPECT_FALSE(ConnectUnix(fixture.path).ok());
  // In-flight stubs observe the close as an error, not a hang.
  EXPECT_FALSE(a->Root().ok());
}

TEST(IdleSweepWaitTest, QuarterOfTimeoutWithClampsAndNoOverflow) {
  // Sweeps disabled: wait forever.
  EXPECT_EQ(IdleSweepWaitMs(0), -1);
  EXPECT_EQ(IdleSweepWaitMs(-5), -1);
  // Normal range: a quarter of the timeout, in milliseconds.
  EXPECT_EQ(IdleSweepWaitMs(60), 15'000);
  EXPECT_EQ(IdleSweepWaitMs(600), 150'000);
  // The smallest enabled timeout still yields a sane wait (and the 50ms
  // floor keeps the poll loop from spinning however the math changes).
  EXPECT_EQ(IdleSweepWaitMs(1), 250);
  // Regression: timeouts past ~24.8 days used to overflow the 32-bit
  // millisecond product and hand poll() a negative wait — i.e. an idle
  // timeout so large it effectively disabled sweeping entirely. The wait
  // must stay positive and capped (sweep at least hourly).
  EXPECT_EQ(IdleSweepWaitMs(30'000'000), 3'600'000);
  EXPECT_EQ(IdleSweepWaitMs(std::numeric_limits<int>::max()), 3'600'000);
}

INSTANTIATE_TEST_SUITE_P(
    Pollers, ConcurrentServerTest, ::testing::ValuesIn(AvailableBackends()),
    [](const ::testing::TestParamInfo<PollerBackend>& info) {
      return std::string(PollerBackendName(info.param));
    });

}  // namespace
}  // namespace ssdb::rpc
