// Secure aggregation subsystem (DESIGN.md §8): COUNT/SUM/EXISTS/GROUP-BY
// answers over an xmark document must match the materialized query path and
// the plaintext ground truth for m = 1, 2, 4 servers under both match
// modes; aggregate round trips must be O(query steps) and independent of
// the candidate-set size; the per-server response payload must be
// O(groups), not O(candidates); and a single server's transcript must
// contain only masked partials (tamper evidence analogous to
// multi_server_test.cc).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "agg/aggregation.h"
#include "agg/columns.h"
#include "core/database.h"
#include "fault_injection.h"
#include "query/ground_truth.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "test_helpers.h"
#include "xmark/generator.h"

namespace ssdb {
namespace {

using agg::Result;
using query::Aggregate;
using query::MatchMode;

constexpr uint32_t kServerCounts[] = {1, 2, 4};
constexpr MatchMode kModes[] = {MatchMode::kContainment,
                                MatchMode::kEquality};

std::string CorpusXml(uint64_t target_bytes = 20 << 10) {
  xmark::GeneratorOptions gen;
  gen.target_bytes = target_bytes;
  gen.seed = 77;
  return xmark::GenerateAuctionDocument(gen).xml;
}

// Element rows of the annotated DOM, for plaintext reference aggregates.
struct DomRow {
  uint32_t pre = 0;
  uint32_t post = 0;
  std::string name;
};

std::vector<DomRow> DomRows(const xml::Document& doc) {
  std::vector<DomRow> rows;
  xml::ForEachElement(doc.root(), [&](const xml::Node& node) {
    rows.push_back({node.pre, node.post, node.name});
  });
  return rows;
}

// Occurrences of `tag` in the subtree of the node with the given pre/post
// (descendant-or-self), straight off the plaintext.
uint64_t Occurrences(const std::vector<DomRow>& rows, uint32_t pre,
                     uint32_t post, const std::string& tag) {
  uint64_t count = 0;
  for (const DomRow& row : rows) {
    if (row.pre >= pre && row.post <= post && row.name == tag) ++count;
  }
  return count;
}

class AggTest : public ::testing::Test {
 protected:
  AggTest()
      : field_(*gf::Field::Make(83)),
        map_(*core::EncryptedXmlDatabase::TagMapForDtd(xmark::AuctionDtd(),
                                                       field_, false)),
        seed_(prg::Seed::FromUint64(2718)),
        xml_(CorpusXml()) {
    auto doc = xml::ParseDocument(xml_);
    SSDB_CHECK(doc.ok());
    doc_ = std::move(*doc);
    xml::AnnotatePrePost(&doc_);
    rows_ = DomRows(doc_);
  }

  std::unique_ptr<core::EncryptedXmlDatabase> Encode(uint32_t servers) {
    core::DatabaseOptions options;
    options.backend = core::Backend::kMemory;
    options.servers = servers;
    auto db = core::EncryptedXmlDatabase::Encode(xml_, map_, seed_, options);
    SSDB_CHECK(db.ok()) << db.status().ToString();
    return std::move(*db);
  }

  gf::Field field_;
  mapping::TagMap map_;
  prg::Seed seed_;
  std::string xml_;
  xml::Document doc_;
  std::vector<DomRow> rows_;
};

// Queries covering both axes, single-step paths, wildcards, and deep
// descents on the xmark structure.
const char* kPaths[] = {
    "/site",
    "//item",
    "/site/people/person",
    "/site//person/name",
    "//open_auction/bidder",
    "/site/regions/*",
    "//person//city",
    "/site/*",
};

TEST_F(AggTest, CountExistsSumMatchMaterializedForAllServerCounts) {
  for (uint32_t servers : kServerCounts) {
    auto db = Encode(servers);
    for (const char* path : kPaths) {
      for (MatchMode mode : kModes) {
        for (core::EngineKind engine :
             {core::EngineKind::kSimple, core::EngineKind::kAdvanced}) {
          auto parsed = query::ParseQuery(path);
          ASSERT_TRUE(parsed.ok()) << path;
          auto materialized = db->QueryParsed(*parsed, engine, mode);
          ASSERT_TRUE(materialized.ok()) << path;

          auto count = db->Query(std::string("count(") + path + ")", engine,
                                 mode);
          ASSERT_TRUE(count.ok()) << count.status().ToString() << " " << path;
          EXPECT_TRUE(count->is_aggregate);
          bool wildcard_final = parsed->steps.back().kind ==
                                query::Step::Kind::kWildcard;
          if (wildcard_final && mode == MatchMode::kContainment) {
            // Containment group-by groups overlap (a subtree contains many
            // tags), so the check is per group: how many result nodes
            // contain each tag — not a partition of the result set.
            for (size_t g = 0; g < count->aggregate.values.size(); ++g) {
              uint64_t expected = 0;
              for (const auto& node : materialized->nodes) {
                if (Occurrences(rows_, node.pre, node.post,
                                count->aggregate.group_names[g]) > 0) {
                  ++expected;
                }
              }
              EXPECT_EQ(count->aggregate.values[g], expected)
                  << "count(" << path << ") group "
                  << count->aggregate.group_names[g] << " m=" << servers;
            }
          } else {
            EXPECT_EQ(count->aggregate.Total(), materialized->nodes.size())
                << "count(" << path << ") m=" << servers << " "
                << query::MatchModeName(mode);
          }

          auto exists = db->Query(std::string("exists(") + path + ")",
                                  engine, mode);
          ASSERT_TRUE(exists.ok()) << path;
          EXPECT_EQ(exists->aggregate.Exists(),
                    !materialized->nodes.empty())
              << "exists(" << path << ") m=" << servers;

          auto sum =
              db->Query(std::string("sum(") + path + ")", engine, mode);
          ASSERT_TRUE(sum.ok()) << sum.status().ToString() << " " << path;
          // Reference: Σ over the same-mode materialized result of the
          // plaintext subtree occurrences of each group's tag. In equality
          // mode every match contributes exactly its own occurrence, so
          // sum == count by construction (DESIGN.md §8).
          if (mode == MatchMode::kEquality) {
            EXPECT_EQ(sum->aggregate.Total(), count->aggregate.Total())
                << "sum(" << path << ") strict m=" << servers;
          } else {
            ASSERT_EQ(sum->aggregate.values.size(),
                      sum->aggregate.group_names.size());
            for (size_t g = 0; g < sum->aggregate.values.size(); ++g) {
              uint64_t expected = 0;
              for (const auto& node : materialized->nodes) {
                expected += Occurrences(rows_, node.pre, node.post,
                                        sum->aggregate.group_names[g]);
              }
              EXPECT_EQ(sum->aggregate.values[g], expected)
                  << "sum(" << path << ") group "
                  << sum->aggregate.group_names[g] << " m=" << servers;
            }
          }
        }
      }
    }
  }
}

TEST_F(AggTest, StrictCountMatchesGroundTruth) {
  auto db = Encode(2);
  for (const char* path : kPaths) {
    auto parsed = query::ParseQuery(path);
    ASSERT_TRUE(parsed.ok()) << path;
    auto truth = query::EvaluateGroundTruth(*parsed, doc_);
    ASSERT_TRUE(truth.ok()) << path;
    auto count = db->Query(std::string("count(") + path + ")",
                           core::EngineKind::kAdvanced, MatchMode::kEquality);
    ASSERT_TRUE(count.ok()) << path;
    EXPECT_EQ(count->aggregate.Total(), truth->size()) << path;
  }
}

TEST_F(AggTest, GroupByHistogramMatchesPerTagOwnership) {
  auto db = Encode(2);
  auto parsed = query::ParseQuery("count(/site/*)");
  ASSERT_TRUE(parsed.ok());
  auto grouped = db->QueryParsed(*parsed, core::EngineKind::kSimple,
                                 MatchMode::kEquality);
  ASSERT_TRUE(grouped.ok());
  EXPECT_TRUE(grouped->aggregate.group_by);
  EXPECT_EQ(grouped->aggregate.values.size(), map_.size());
  EXPECT_EQ(grouped->stats.result_size, map_.size());

  // Plaintext histogram of /site children's own tags.
  std::map<std::string, uint64_t> expected;
  auto materialized = db->Query("/site/*", core::EngineKind::kSimple,
                                MatchMode::kEquality);
  ASSERT_TRUE(materialized.ok());
  std::map<uint32_t, std::string> name_of;
  for (const DomRow& row : rows_) name_of[row.pre] = row.name;
  for (const auto& node : materialized->nodes) {
    ++expected[name_of[node.pre]];
  }
  uint64_t nonzero_groups = 0;
  for (size_t g = 0; g < grouped->aggregate.values.size(); ++g) {
    const std::string& name = grouped->aggregate.group_names[g];
    uint64_t want = expected.count(name) ? expected[name] : 0;
    EXPECT_EQ(grouped->aggregate.values[g], want) << name;
    if (want != 0) ++nonzero_groups;
  }
  EXPECT_GT(nonzero_groups, 2u);  // /site has several distinct child tags
  EXPECT_EQ(grouped->aggregate.Total(), materialized->nodes.size());
}

TEST_F(AggTest, FallbackPathsStayExact) {
  auto db = Encode(2);
  for (MatchMode mode : kModes) {
    // Final step with a predicate: outside the column algebra.
    auto materialized = db->Query("/site/people/person[address]",
                                  core::EngineKind::kSimple, mode);
    ASSERT_TRUE(materialized.ok());
    auto count = db->Query("count(/site/people/person[address])",
                           core::EngineKind::kSimple, mode);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(count->aggregate.Total(), materialized->nodes.size());

    auto sum = db->Query("sum(/site/people/person[address])",
                         core::EngineKind::kSimple, mode);
    ASSERT_TRUE(sum.ok());
    uint64_t expected = 0;
    for (const auto& node : materialized->nodes) {
      expected += mode == MatchMode::kEquality
                      ? 1
                      : Occurrences(rows_, node.pre, node.post, "person");
    }
    EXPECT_EQ(sum->aggregate.Total(), expected);

    // '..' final step: count works, sum is rejected cleanly.
    auto parent_count = db->Query("count(/site/people/person/..)",
                                  core::EngineKind::kSimple, mode);
    ASSERT_TRUE(parent_count.ok());
    auto parent_materialized = db->Query("/site/people/person/..",
                                         core::EngineKind::kSimple, mode);
    ASSERT_TRUE(parent_materialized.ok());
    EXPECT_EQ(parent_count->aggregate.Total(),
              parent_materialized->nodes.size());
    EXPECT_FALSE(db->Query("sum(/site/people/person/..)",
                           core::EngineKind::kSimple, mode)
                     .ok());
  }
}

TEST_F(AggTest, UnmappedTagAggregatesToZero) {
  auto db = Encode(1);
  auto count = db->Query("count(/site/no_such_tag)",
                         core::EngineKind::kSimple, MatchMode::kEquality);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->aggregate.Total(), 0u);
  EXPECT_FALSE(count->aggregate.Exists());
}

TEST_F(AggTest, CoveringSetDropsNestedNodes) {
  // site(1) > people(2) > person(3); person nested under both.
  std::vector<filter::NodeMeta> nodes = {
      {5, 2, 2},   // some sibling subtree
      {1, 10, 0},  // root: covers everything
      {2, 9, 1},   // nested in root
      {5, 2, 2},   // duplicate
  };
  std::vector<filter::NodeMeta> covering = agg::CoveringSet(nodes);
  ASSERT_EQ(covering.size(), 1u);
  EXPECT_EQ(covering[0].pre, 1u);

  // Disjoint siblings all survive.
  std::vector<filter::NodeMeta> siblings = {{2, 3, 1}, {5, 6, 1}, {8, 9, 1}};
  EXPECT_EQ(agg::CoveringSet(siblings).size(), 3u);
}

// Remote deployment: aggregate round trips are O(query steps) and the
// response payload is O(groups) — both independent of the candidate count.
TEST_F(AggTest, RemoteAggregateIsOneExchangeAndOGroupsBytes) {
  for (const uint64_t target_bytes : {uint64_t{8} << 10, uint64_t{40} << 10}) {
    xmark::GeneratorOptions gen;
    gen.target_bytes = target_bytes;
    gen.seed = 9;
    std::string xml = xmark::GenerateAuctionDocument(gen).xml;

    core::DatabaseOptions options;
    options.backend = core::Backend::kMemory;
    auto served = core::EncryptedXmlDatabase::Encode(xml, map_, seed_,
                                                     options);
    ASSERT_TRUE(served.ok());

    rpc::ChannelPair pair = rpc::CreateInProcessChannelPair();
    rpc::Channel* client_channel = pair.client.get();
    rpc::ServerThread server_thread((*served)->ring(),
                                    (*served)->server_filter(),
                                    std::move(pair.server));
    auto remote = core::EncryptedXmlDatabase::ConnectRemote(
        std::move(pair.client), map_, seed_, 83, 1);
    ASSERT_TRUE(remote.ok());

    // Materialized baseline: bytes grow with the candidate set.
    auto fetch = (*remote)->Query("//item", core::EngineKind::kSimple,
                                  MatchMode::kContainment);
    ASSERT_TRUE(fetch.ok());
    uint64_t fetch_received = client_channel->bytes_received();

    uint64_t before_received = fetch_received;
    auto count = (*remote)->Query("count(//item)", core::EngineKind::kSimple,
                                  MatchMode::kContainment);
    ASSERT_TRUE(count.ok());
    uint64_t agg_received = client_channel->bytes_received() -
                            before_received;
    EXPECT_EQ(count->aggregate.Total(), fetch->nodes.size());

    // count(//item) is a single-step aggregate: one Root lookup + one
    // partial-aggregate exchange, whatever the document size.
    EXPECT_EQ(count->stats.eval.round_trips, 2u)
        << "target_bytes=" << target_bytes;
    EXPECT_EQ(count->stats.eval.aggregate_ops, 1u);
    EXPECT_EQ(count->stats.result_size, 1u);
    // Response = one masked word (plus envelope); far below the
    // materialized transfer and independent of the candidate count.
    EXPECT_LT(agg_received, 64u);
    EXPECT_GT(fetch->nodes.size(), 10u);

    // Group-by: one word per mapped tag, still one exchange.
    before_received = client_channel->bytes_received();
    auto grouped = (*remote)->Query("count(//*)", core::EngineKind::kSimple,
                                    MatchMode::kEquality);
    ASSERT_TRUE(grouped.ok());
    uint64_t grouped_received = client_channel->bytes_received() -
                                before_received;
    EXPECT_EQ(grouped->stats.eval.round_trips, 2u);
    EXPECT_LT(grouped_received, 64u + 8u * map_.size());
    // Every element has exactly one tag: strict group-by over all
    // descendants-or-self of the root partitions the document.
    EXPECT_EQ(grouped->aggregate.Total(),
              (*served)->encode_result().node_count);

    auto shutdown = static_cast<rpc::RemoteServerFilter*>(
                        (*remote)->server_filter())
                        ->Shutdown();
    ASSERT_TRUE(shutdown.ok());
  }
}

TEST_F(AggTest, SingleServerPartialsAreMaskedAndTamperEvident) {
  auto db = Encode(2);
  agg::Spec spec;
  spec.columns = agg::ColBit(agg::Col::kContainSelf) |
                 agg::ColBit(agg::Col::kContainDesc);
  spec.pres = {1};  // the root: fold over the whole document
  auto item = map_.Lookup("item");
  ASSERT_TRUE(item.ok());
  auto index = map_.ValueIndex(*item);
  ASSERT_TRUE(index.ok());
  spec.value_indexes = {*index};
  spec.value_count = static_cast<uint32_t>(map_.size());

  // The true count: nodes whose subtree contains an item.
  spec.value_count = static_cast<uint32_t>(map_.size());
  auto combined = db->client_filter()->Aggregate(spec);
  ASSERT_TRUE(combined.ok());
  uint64_t truth = 0;
  for (const DomRow& row : rows_) {
    if (Occurrences(rows_, row.pre, row.post, "item") > 0) ++truth;
  }
  EXPECT_EQ((*combined)[0], truth);

  // Each slice's partial alone is a masked word, not the answer — and two
  // different seeds mask the same data differently while combining to the
  // same truth.
  std::vector<agg::Word> partials;
  for (size_t i = 0; i < 2; ++i) {
    auto partial = db->slice_filter(i)->PartialAggregate(spec);
    ASSERT_TRUE(partial.ok());
    partials.push_back((*partial)[0]);
    EXPECT_NE(static_cast<uint64_t>((*partial)[0]), truth)
        << "slice " << i << " partial equals the plaintext answer";
  }

  prg::Seed other_seed = prg::Seed::FromUint64(999);
  core::DatabaseOptions options;
  options.backend = core::Backend::kMemory;
  options.servers = 2;
  auto other = core::EncryptedXmlDatabase::Encode(xml_, map_, other_seed,
                                                  options);
  ASSERT_TRUE(other.ok());
  auto other_combined = (*other)->client_filter()->Aggregate(spec);
  ASSERT_TRUE(other_combined.ok());
  EXPECT_EQ((*other_combined)[0], truth);
  for (size_t i = 0; i < 2; ++i) {
    auto partial = (*other)->slice_filter(i)->PartialAggregate(spec);
    ASSERT_TRUE(partial.ok());
    EXPECT_NE((*partial)[0], partials[i])
        << "slice " << i << " partial did not change with the seed";
  }

  // Tamper evidence: perturb one slice's partials (via the shared harness,
  // tests/fault_injection.h) and the combined aggregate no longer matches
  // the materialized count — the client's cross-check catches a lying
  // server. Identification needs the §9 track (verified_agg_test.cc).
  testing_helpers::FaultConfig config;
  config.fault = testing_helpers::Fault::kAddOne;
  config.on_aggregate = true;
  testing_helpers::TamperingServerFilter tampered(db->ring(),
                                                  db->slice_filter(1),
                                                  config);
  filter::MultiServerFilter fanout(db->ring(),
                                   {db->slice_filter(0), &tampered});
  filter::ClientFilter client(db->ring(), prg::Prg(seed_), &fanout);
  auto tampered_total = client.Aggregate(spec);
  ASSERT_TRUE(tampered_total.ok());
  EXPECT_NE((*tampered_total)[0], truth);
  EXPECT_EQ(static_cast<agg::Word>((*tampered_total)[0]),
            static_cast<agg::Word>(truth + 1));
}

TEST_F(AggTest, DatabaseWithoutAggregateColumnsFailsCleanly) {
  core::DatabaseOptions options;
  options.backend = core::Backend::kMemory;
  options.encode.aggregate_columns = false;
  auto db = core::EncryptedXmlDatabase::Encode(xml_, map_, seed_, options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->encode_result().agg_bytes, 0u);

  // Plain queries still work...
  auto plain = (*db)->Query("/site/people/person", core::EngineKind::kSimple,
                            MatchMode::kEquality);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->nodes.empty());

  // ...but aggregates report the missing columns instead of guessing.
  auto count = (*db)->Query("count(//item)", core::EngineKind::kSimple,
                            MatchMode::kEquality);
  EXPECT_FALSE(count.ok());
  EXPECT_EQ(count.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(AggTest, AggregateOpsRejectMalformedSpecs) {
  auto db = Encode(1);
  filter::ServerFilter* server = db->server_filter();

  agg::Spec spec;
  spec.pres = {1};
  spec.value_indexes = {0};
  spec.columns = 0;  // no columns selected
  EXPECT_FALSE(server->PartialAggregate(spec).ok());

  spec.columns = 0x80;  // outside the seven defined columns
  EXPECT_FALSE(server->PartialAggregate(spec).ok());

  spec.columns = agg::ColBit(agg::Col::kEqualSelf);
  spec.value_indexes = {static_cast<uint32_t>(map_.size()) + 5};
  EXPECT_FALSE(server->PartialAggregate(spec).ok());

  spec.value_indexes = {};
  EXPECT_FALSE(server->PartialAggregate(spec).ok());
}

}  // namespace
}  // namespace ssdb
