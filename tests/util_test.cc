#include <gtest/gtest.h>

#include "util/bitpack.h"
#include "util/file_util.h"
#include "util/hex.h"
#include "util/random.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/string_util.h"
#include "util/varint.h"

namespace ssdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    SSDB_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsIOError());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::InvalidArgument("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto produce = []() -> StatusOr<int> { return 10; };
  auto chain = [&]() -> StatusOr<int> {
    SSDB_ASSIGN_OR_RETURN(int x, produce());
    return x * 2;
  };
  EXPECT_EQ(*chain(), 20);
}

TEST(BitWidthTest, KnownValues) {
  EXPECT_EQ(BitWidth(2), 1);
  EXPECT_EQ(BitWidth(3), 2);
  EXPECT_EQ(BitWidth(5), 3);
  EXPECT_EQ(BitWidth(29), 5);
  EXPECT_EQ(BitWidth(83), 7);
  EXPECT_EQ(BitWidth(256), 8);
  EXPECT_EQ(BitWidth(257), 9);
}

TEST(BitpackTest, RoundTripVariousWidths) {
  for (int bits = 1; bits <= 16; ++bits) {
    Random rng(bits);
    std::vector<uint32_t> values;
    uint32_t mask = (bits >= 32) ? ~0u : ((1u << bits) - 1);
    for (int i = 0; i < 100; ++i) {
      values.push_back(static_cast<uint32_t>(rng.Next()) & mask);
    }
    std::string packed = PackVector(values, bits);
    EXPECT_EQ(packed.size(), (100 * bits + 7) / 8) << "bits=" << bits;
    auto unpacked = UnpackVector(packed, bits, values.size());
    ASSERT_TRUE(unpacked.ok());
    EXPECT_EQ(*unpacked, values) << "bits=" << bits;
  }
}

TEST(BitpackTest, ReaderOutOfRange) {
  BitReader reader("a");  // 8 bits
  uint64_t v;
  EXPECT_TRUE(reader.Read(8, &v).ok());
  EXPECT_FALSE(reader.Read(1, &v).ok());
}

TEST(BitpackTest, PaperStorageCost) {
  // (p^e - 1) * ceil(log2(p^e)) bits: p=29 -> 28*5 = 140 bits = 18 bytes
  // (the paper rounds to "17 bytes" with exact log2; we bit-pack per
  // coefficient). p=83 -> 82*7 = 574 bits = 72 bytes.
  EXPECT_EQ(PackVector(std::vector<uint32_t>(28, 1), 5).size(), 18u);
  EXPECT_EQ(PackVector(std::vector<uint32_t>(82, 1), 7).size(), 72u);
}

TEST(VarintTest, RoundTrip) {
  std::string buf;
  PutVarint64(&buf, 0);
  PutVarint64(&buf, 127);
  PutVarint64(&buf, 128);
  PutVarint64(&buf, 1ull << 40);
  PutVarintSigned64(&buf, -5);
  PutVarintSigned64(&buf, 5);
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed64(&buf, 0x0123456789abcdefULL);
  PutLengthPrefixed(&buf, "hello");

  std::string_view view = buf;
  uint64_t u;
  int64_t s;
  uint32_t f32;
  uint64_t f64;
  std::string_view str;
  ASSERT_TRUE(GetVarint64(&view, &u).ok());
  EXPECT_EQ(u, 0u);
  ASSERT_TRUE(GetVarint64(&view, &u).ok());
  EXPECT_EQ(u, 127u);
  ASSERT_TRUE(GetVarint64(&view, &u).ok());
  EXPECT_EQ(u, 128u);
  ASSERT_TRUE(GetVarint64(&view, &u).ok());
  EXPECT_EQ(u, 1ull << 40);
  ASSERT_TRUE(GetVarintSigned64(&view, &s).ok());
  EXPECT_EQ(s, -5);
  ASSERT_TRUE(GetVarintSigned64(&view, &s).ok());
  EXPECT_EQ(s, 5);
  ASSERT_TRUE(GetFixed32(&view, &f32).ok());
  EXPECT_EQ(f32, 0xdeadbeef);
  ASSERT_TRUE(GetFixed64(&view, &f64).ok());
  EXPECT_EQ(f64, 0x0123456789abcdefULL);
  ASSERT_TRUE(GetLengthPrefixed(&view, &str).ok());
  EXPECT_EQ(str, "hello");
  EXPECT_TRUE(view.empty());
}

TEST(VarintTest, TruncatedInputFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  std::string_view view(buf.data(), 2);
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&view, &v).ok());
}

TEST(HexTest, RoundTrip) {
  std::string bytes("\x00\x01\xfe\xff", 4);
  EXPECT_EQ(HexEncode(bytes), "0001feff");
  auto decoded = HexDecode("0001feff");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, bytes);
}

TEST(HexTest, RejectsBadInput) {
  EXPECT_FALSE(HexDecode("abc").ok());   // odd length
  EXPECT_FALSE(HexDecode("zz").ok());    // non-hex
}

TEST(RandomTest, DeterministicAcrossInstances) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, ZipfFavorsSmallIndices) {
  Random rng(3);
  uint64_t low = 0, total = 10000;
  for (uint64_t i = 0; i < total; ++i) {
    if (rng.Zipf(100) < 10) ++low;
  }
  // The first 10% of ranks should get far more than 10% of the mass.
  EXPECT_GT(low, total / 5);
}

TEST(StringUtilTest, SplitAndJoin) {
  EXPECT_EQ(SplitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(SplitWhitespace("  a\tb \n c "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(JoinStrings({"x", "y"}, "/"), "x/y");
  EXPECT_EQ(TrimWhitespace("  hi  "), "hi");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_EQ(AsciiToLower("AbC"), "abc");
}

TEST(FileUtilTest, WriteReadRoundTrip) {
  TempDir dir("util_test");
  std::string path = dir.FilePath("f.txt");
  ASSERT_TRUE(WriteStringToFile(path, "contents\n").ok());
  EXPECT_TRUE(FileExists(path));
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "contents\n");
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 9u);
  ASSERT_TRUE(RemoveFileIfExists(path).ok());
  EXPECT_FALSE(FileExists(path));
}

TEST(FileUtilTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadFileToString("/nonexistent/nope").ok());
}

}  // namespace
}  // namespace ssdb
