#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "storage/pager.h"
#include "util/file_util.h"
#include "util/random.h"

namespace ssdb::storage {
namespace {

TEST(PageTest, ChecksumDetectsCorruption) {
  PageBuf page;
  page.fill(0);
  page[100] = 42;
  SealPage(page.data());
  EXPECT_TRUE(VerifyPage(page.data()));
  page[100] = 43;
  EXPECT_FALSE(VerifyPage(page.data()));
}

TEST(PageTest, FreshZeroPageVerifies) {
  PageBuf page;
  page.fill(0);
  EXPECT_TRUE(VerifyPage(page.data()));
}

TEST(PageTest, EndianHelpersRoundTrip) {
  uint8_t buf[8];
  StoreU16(buf, 0xbeef);
  EXPECT_EQ(LoadU16(buf), 0xbeef);
  StoreU32(buf, 0xdeadbeef);
  EXPECT_EQ(LoadU32(buf), 0xdeadbeefu);
  StoreU64(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(LoadU64(buf), 0x0123456789abcdefULL);
}

TEST(PagerTest, CreateWriteReadReopen) {
  TempDir dir("pager_test");
  std::string path = dir.FilePath("db");
  {
    auto pager = Pager::Open(path, true);
    ASSERT_TRUE(pager.ok());
    EXPECT_EQ((*pager)->page_count(), 1u);  // meta
    auto id = (*pager)->AllocatePage();
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, 1u);
    PageBuf buf;
    buf.fill(0);
    buf[500] = 77;
    SealPage(buf.data());
    ASSERT_TRUE((*pager)->WritePage(*id, buf).ok());
    ASSERT_TRUE((*pager)->SetMetaSlot(3, 0xabcd).ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  {
    auto pager = Pager::Open(path, false);
    ASSERT_TRUE(pager.ok());
    EXPECT_EQ((*pager)->page_count(), 2u);
    EXPECT_EQ((*pager)->GetMetaSlot(3), 0xabcdu);
    PageBuf buf;
    ASSERT_TRUE((*pager)->ReadPage(1, &buf).ok());
    EXPECT_EQ(buf[500], 77);
    EXPECT_TRUE(VerifyPage(buf.data()));
  }
}

TEST(PagerTest, FreeListReusesPages) {
  TempDir dir("pager_free");
  auto pager = Pager::Open(dir.FilePath("db"), true);
  ASSERT_TRUE(pager.ok());
  auto a = (*pager)->AllocatePage();
  auto b = (*pager)->AllocatePage();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE((*pager)->FreePage(*a).ok());
  auto c = (*pager)->AllocatePage();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);  // reused
  EXPECT_FALSE((*pager)->FreePage(0).ok());  // meta is not freeable
}

TEST(PagerTest, RejectsForeignFiles) {
  TempDir dir("pager_bad");
  std::string path = dir.FilePath("not_a_db");
  ASSERT_TRUE(WriteStringToFile(path, std::string(8192, 'x')).ok());
  EXPECT_FALSE(Pager::Open(path, false).ok());
}

TEST(BufferPoolTest, FetchCachesPages) {
  TempDir dir("pool_test");
  auto pager = Pager::Open(dir.FilePath("db"), true);
  ASSERT_TRUE(pager.ok());
  BufferPool pool(pager->get(), 16);
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  PageId id = page->id();
  page->data()[200] = 9;
  page->MarkDirty();
  *page = PageHandle();  // unpin
  auto again = pool.Fetch(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->data()[200], 9);
  EXPECT_GE(pool.stats().hits, 1u);
}

TEST(BufferPoolTest, EvictsLruAndWritesBack) {
  TempDir dir("pool_evict");
  auto pager = Pager::Open(dir.FilePath("db"), true);
  ASSERT_TRUE(pager.ok());
  BufferPool pool(pager->get(), 8);
  std::vector<PageId> ids;
  for (int i = 0; i < 32; ++i) {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    page->data()[10] = static_cast<uint8_t>(i);
    page->MarkDirty();
    ids.push_back(page->id());
  }
  EXPECT_GT(pool.stats().evictions, 0u);
  // Every page still readable with its contents.
  for (int i = 0; i < 32; ++i) {
    auto page = pool.Fetch(ids[i]);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->data()[10], static_cast<uint8_t>(i));
  }
}

TEST(BufferPoolTest, AllPinnedFailsGracefully) {
  TempDir dir("pool_pinned");
  auto pager = Pager::Open(dir.FilePath("db"), true);
  ASSERT_TRUE(pager.ok());
  BufferPool pool(pager->get(), 8);
  std::vector<PageHandle> pinned;
  for (int i = 0; i < 8; ++i) {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    pinned.push_back(std::move(*page));
  }
  EXPECT_FALSE(pool.NewPage().ok());  // no evictable frame
  pinned.clear();
  EXPECT_TRUE(pool.NewPage().ok());
}

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest()
      : dir_("heap_test"),
        pager_(*Pager::Open(dir_.FilePath("db"), true)),
        pool_(pager_.get(), 64) {}

  TempDir dir_;
  std::unique_ptr<Pager> pager_;
  BufferPool pool_;
};

TEST_F(HeapFileTest, AppendGetRoundTrip) {
  auto heap = HeapFile::Create(&pool_);
  ASSERT_TRUE(heap.ok());
  auto rid = heap->Append("hello world");
  ASSERT_TRUE(rid.ok());
  auto value = heap->Get(*rid);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "hello world");
}

TEST_F(HeapFileTest, SpillsAcrossPagesAndScans) {
  auto heap = HeapFile::Create(&pool_);
  ASSERT_TRUE(heap.ok());
  Random rng(5);
  std::vector<std::pair<RecordId, std::string>> records;
  for (int i = 0; i < 500; ++i) {
    std::string record(100 + rng.Uniform(200), static_cast<char>('a' + i % 26));
    auto rid = heap->Append(record);
    ASSERT_TRUE(rid.ok());
    records.emplace_back(*rid, record);
  }
  auto pages = heap->PageCount();
  ASSERT_TRUE(pages.ok());
  EXPECT_GT(*pages, 10u);
  for (const auto& [rid, record] : records) {
    auto value = heap->Get(rid);
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(*value, record);
  }
  size_t scanned = 0;
  ASSERT_TRUE(heap->Scan([&](RecordId, std::string_view) {
                    ++scanned;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(scanned, records.size());
}

TEST_F(HeapFileTest, DeleteTombstones) {
  auto heap = HeapFile::Create(&pool_);
  ASSERT_TRUE(heap.ok());
  auto rid1 = heap->Append("one");
  auto rid2 = heap->Append("two");
  ASSERT_TRUE(rid1.ok() && rid2.ok());
  ASSERT_TRUE(heap->Delete(*rid1).ok());
  EXPECT_FALSE(heap->Get(*rid1).ok());
  EXPECT_TRUE(heap->Get(*rid2).ok());
  EXPECT_FALSE(heap->Delete(*rid1).ok());  // double delete
  size_t scanned = 0;
  ASSERT_TRUE(heap->Scan([&](RecordId, std::string_view) {
                    ++scanned;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(scanned, 1u);
}

TEST_F(HeapFileTest, RejectsOversizedRecords) {
  auto heap = HeapFile::Create(&pool_);
  ASSERT_TRUE(heap.ok());
  EXPECT_FALSE(heap->Append(std::string(kPageSize, 'x')).ok());
}

}  // namespace
}  // namespace ssdb::storage
