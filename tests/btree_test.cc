#include <gtest/gtest.h>

#include <map>

#include "storage/btree.h"
#include "util/file_util.h"
#include "util/random.h"

namespace ssdb::storage {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest()
      : dir_("btree_test"),
        pager_(*Pager::Open(dir_.FilePath("db"), true)),
        pool_(pager_.get(), 256) {}

  TempDir dir_;
  std::unique_ptr<Pager> pager_;
  BufferPool pool_;
};

TEST_F(BTreeTest, InsertGetSmall) {
  auto tree = BTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(5, 50).ok());
  ASSERT_TRUE(tree->Insert(3, 30).ok());
  ASSERT_TRUE(tree->Insert(8, 80).ok());
  EXPECT_EQ(*tree->Get(5), 50u);
  EXPECT_EQ(*tree->Get(3), 30u);
  EXPECT_EQ(*tree->Get(8), 80u);
  EXPECT_FALSE(tree->Get(4).ok());
  EXPECT_TRUE(tree->Contains(3));
  EXPECT_FALSE(tree->Contains(99));
}

TEST_F(BTreeTest, DuplicateInsertRejectedUpsertAllowed) {
  auto tree = BTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(1, 10).ok());
  EXPECT_FALSE(tree->Insert(1, 20).ok());
  EXPECT_EQ(*tree->Get(1), 10u);
  ASSERT_TRUE(tree->Upsert(1, 20).ok());
  EXPECT_EQ(*tree->Get(1), 20u);
}

TEST_F(BTreeTest, SplitsOnSequentialInsert) {
  auto tree = BTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  const int n = 5000;  // forces multiple levels (leaf capacity 255)
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tree->Insert(i, i * 2).ok()) << i;
  }
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(*tree->Get(i), static_cast<uint64_t>(i * 2));
  }
  EXPECT_EQ(*tree->Count(), static_cast<uint64_t>(n));
  EXPECT_GT(*tree->PageCount(), 20u);
}

TEST_F(BTreeTest, SplitsOnReverseAndRandomInsert) {
  auto tree = BTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  for (int i = 3000; i > 0; --i) {
    ASSERT_TRUE(tree->Insert(i, i).ok());
  }
  Random rng(9);
  for (int i = 0; i < 2000; ++i) {
    uint64_t key = 10000 + rng.Uniform(1000000);
    tree->Upsert(key, key).ok();
  }
  for (int i = 1; i <= 3000; ++i) {
    ASSERT_EQ(*tree->Get(i), static_cast<uint64_t>(i));
  }
}

TEST_F(BTreeTest, ScanRangeInOrder) {
  auto tree = BTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree->Insert(i * 3, i).ok());
  }
  std::vector<uint64_t> keys;
  ASSERT_TRUE(tree->Scan(100, 200, [&](uint64_t k, uint64_t) {
                    keys.push_back(k);
                    return true;
                  })
                  .ok());
  ASSERT_FALSE(keys.empty());
  EXPECT_GE(keys.front(), 100u);
  EXPECT_LT(keys.back(), 200u);
  for (size_t i = 1; i < keys.size(); ++i) {
    EXPECT_LT(keys[i - 1], keys[i]);
  }
  // Early stop.
  int visited = 0;
  ASSERT_TRUE(tree->Scan(0, UINT64_MAX, [&](uint64_t, uint64_t) {
                    return ++visited < 10;
                  })
                  .ok());
  EXPECT_EQ(visited, 10);
}

TEST_F(BTreeTest, DeleteRemovesKeys) {
  auto tree = BTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree->Insert(i, i).ok());
  }
  for (int i = 0; i < 1000; i += 2) {
    ASSERT_TRUE(tree->Delete(i).ok());
  }
  EXPECT_FALSE(tree->Delete(0).ok());  // already gone
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(tree->Contains(i), i % 2 == 1) << i;
  }
  EXPECT_EQ(*tree->Count(), 500u);
}

TEST_F(BTreeTest, ModelCheckAgainstStdMap) {
  // Property test: a random workload of inserts/upserts/deletes/lookups
  // behaves exactly like std::map.
  auto tree = BTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  std::map<uint64_t, uint64_t> model;
  Random rng(31337);
  for (int op = 0; op < 20000; ++op) {
    uint64_t key = rng.Uniform(3000);
    switch (rng.Uniform(4)) {
      case 0: {  // insert
        bool expect_ok = model.count(key) == 0;
        Status s = tree->Insert(key, op);
        EXPECT_EQ(s.ok(), expect_ok);
        if (expect_ok) model[key] = op;
        break;
      }
      case 1: {  // upsert
        ASSERT_TRUE(tree->Upsert(key, op).ok());
        model[key] = op;
        break;
      }
      case 2: {  // delete
        bool expect_ok = model.erase(key) > 0;
        EXPECT_EQ(tree->Delete(key).ok(), expect_ok);
        break;
      }
      default: {  // lookup
        auto value = tree->Get(key);
        auto it = model.find(key);
        ASSERT_EQ(value.ok(), it != model.end());
        if (value.ok()) EXPECT_EQ(*value, it->second);
      }
    }
  }
  // Full-order comparison via scan.
  std::vector<std::pair<uint64_t, uint64_t>> scanned;
  ASSERT_TRUE(tree->Scan(0, UINT64_MAX, [&](uint64_t k, uint64_t v) {
                    scanned.emplace_back(k, v);
                    return true;
                  })
                  .ok());
  ASSERT_EQ(scanned.size(), model.size());
  size_t i = 0;
  for (const auto& [k, v] : model) {
    EXPECT_EQ(scanned[i].first, k);
    EXPECT_EQ(scanned[i].second, v);
    ++i;
  }
}

TEST_F(BTreeTest, PersistsAcrossReopen) {
  std::string path = dir_.FilePath("persist_db");
  PageId root;
  {
    auto pager = Pager::Open(path, true);
    ASSERT_TRUE(pager.ok());
    BufferPool pool(pager->get(), 64);
    auto tree = BTree::Create(&pool);
    ASSERT_TRUE(tree.ok());
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(tree->Insert(i, i + 7).ok());
    }
    root = tree->root();
    ASSERT_TRUE(pool.FlushAll().ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  {
    auto pager = Pager::Open(path, false);
    ASSERT_TRUE(pager.ok());
    BufferPool pool(pager->get(), 64);
    BTree tree = BTree::Open(&pool, root);
    for (int i = 0; i < 2000; ++i) {
      ASSERT_EQ(*tree.Get(i), static_cast<uint64_t>(i + 7));
    }
  }
}

TEST_F(BTreeTest, CompositeKeysModelDuplicateColumns) {
  // The parent/post indexes pack (column << 32 | pre); range scans recover
  // all entries for one column value in pre order.
  auto tree = BTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  for (uint32_t parent : {5u, 7u}) {
    for (uint32_t pre = 1; pre <= 100; ++pre) {
      ASSERT_TRUE(tree->Insert((static_cast<uint64_t>(parent) << 32) |
                                   (parent * 1000 + pre),
                               pre)
                      .ok());
    }
  }
  std::vector<uint64_t> values;
  ASSERT_TRUE(tree->Scan(uint64_t{5} << 32, uint64_t{6} << 32,
                         [&](uint64_t, uint64_t v) {
                           values.push_back(v);
                           return true;
                         })
                  .ok());
  EXPECT_EQ(values.size(), 100u);
  for (size_t i = 1; i < values.size(); ++i) {
    EXPECT_LT(values[i - 1], values[i]);
  }
}

}  // namespace
}  // namespace ssdb::storage
