// Mutable documents (DESIGN.md §12): secret-shared two-phase
// INSERT/UPDATE/DELETE.
//
//  * Equivalence: a mutated database must be indistinguishable — structure,
//    recovered tag values, sealed payloads, aggregate answers — from a fresh
//    encode of the post-mutation document, at every server split m.
//  * Proportionality: MutateStats must scale with the touched subtree and
//    its root path, never with the document (the §12 cost contract).
//  * Atomicity: a failed prepare leaves every slice byte-identical to the
//    committed version; a crash between the phases is healed by recovery —
//    commit iff any slice committed — on the real disk backend, journal and
//    all.
//  * Capacity: the side column store lifts the old ~140-tag cap of the
//    4 KiB heap row, so a 1000-tag map encodes, queries, mutates and
//    reopens on disk.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/options.h"
#include "encode/reshare.h"
#include "filter/client_filter.h"
#include "filter/multi_server_filter.h"
#include "filter/server_filter.h"
#include "gf/field.h"
#include "gf/ring.h"
#include "mapping/tag_map.h"
#include "prg/prg.h"
#include "prg/seed.h"
#include "shard/catalog.h"
#include "shard/router.h"
#include "storage/mutation.h"
#include "storage/node_store.h"
#include "storage/table.h"
#include "test_helpers.h"
#include "util/file_util.h"
#include "util/logging.h"
#include "xml/dom.h"

namespace ssdb {
namespace {

using core::Backend;
using core::DatabaseOptions;
using core::EncryptedXmlDatabase;
using core::EngineKind;
using query::MatchMode;

// A small library document with known pre numbers:
//   lib=1 shelfA=2 book=3 title=4 book=5 title=6 shelfB=7 box=8 coin=9
constexpr char kLibXml[] =
    "<lib><shelfA><book><title>t1</title></book>"
    "<book><title>t2</title></book></shelfA>"
    "<shelfB><box><coin>c1</coin></box></shelfB></lib>";

// kLibXml after UPDATE pre=8: box re-tagged to book.
constexpr char kLibBoxRetagged[] =
    "<lib><shelfA><book><title>t1</title></book>"
    "<book><title>t2</title></book></shelfA>"
    "<shelfB><book><coin>c1</coin></book></shelfB></lib>";

// Tag map covering every element name of every given document.
mapping::TagMap MapFor(const std::vector<std::string>& xmls,
                       const gf::Field& field) {
  std::vector<std::string> names;
  std::set<std::string> seen;
  for (const std::string& xml : xmls) {
    auto doc = xml::ParseDocument(xml);
    SSDB_CHECK(doc.ok()) << doc.status().ToString();
    xml::ForEachElement(doc->root(), [&](const xml::Node& node) {
      if (seen.insert(node.name).second) names.push_back(node.name);
    });
  }
  auto map = mapping::TagMap::FromNames(names, field);
  SSDB_CHECK(map.ok()) << map.status().ToString();
  return std::move(*map);
}

// Everything a client can learn about one node; two databases holding the
// same document must produce identical snapshots whatever their seeds,
// nonces, or server split.
struct NodeState {
  uint32_t pre = 0;
  uint32_t post = 0;
  uint32_t parent = 0;
  gf::Elem value = 0;  // recovered own tag value (the equality test)
  std::string name;    // sealed payload (sealed databases only)
  std::string text;
};

std::vector<NodeState> Snapshot(filter::ClientFilter* client, bool sealed) {
  std::vector<NodeState> out;
  auto root = client->Root();
  SSDB_CHECK(root.ok()) << root.status().ToString();
  std::vector<filter::NodeMeta> stack{*root};
  while (!stack.empty()) {
    filter::NodeMeta meta = stack.back();
    stack.pop_back();
    NodeState state;
    state.pre = meta.pre;
    state.post = meta.post;
    state.parent = meta.parent;
    auto value = client->RecoverOwnValue(meta);
    SSDB_CHECK(value.ok()) << "pre " << meta.pre << ": "
                           << value.status().ToString();
    state.value = *value;
    if (sealed) {
      auto revealed = client->Reveal(meta);
      SSDB_CHECK(revealed.ok()) << "pre " << meta.pre << ": "
                                << revealed.status().ToString();
      state.name = revealed->name;
      state.text = revealed->text;
    }
    out.push_back(state);
    auto children = client->Children(meta);
    SSDB_CHECK(children.ok()) << children.status().ToString();
    for (const filter::NodeMeta& child : *children) stack.push_back(child);
  }
  std::sort(out.begin(), out.end(),
            [](const NodeState& a, const NodeState& b) { return a.pre < b.pre; });
  return out;
}

void ExpectSameDocument(const std::vector<NodeState>& got,
                        const std::vector<NodeState>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].pre, want[i].pre) << "node " << i;
    EXPECT_EQ(got[i].post, want[i].post) << "pre " << got[i].pre;
    EXPECT_EQ(got[i].parent, want[i].parent) << "pre " << got[i].pre;
    EXPECT_EQ(got[i].value, want[i].value) << "pre " << got[i].pre;
    EXPECT_EQ(got[i].name, want[i].name) << "pre " << got[i].pre;
    EXPECT_EQ(got[i].text, want[i].text) << "pre " << got[i].pre;
  }
}

class MutateTest : public ::testing::Test {
 protected:
  MutateTest() : field_(*gf::Field::Make(83)), seed_(prg::Seed::FromUint64(7)) {}

  std::unique_ptr<EncryptedXmlDatabase> MakeDb(const std::string& xml,
                                               const mapping::TagMap& map,
                                               uint32_t servers, bool seal) {
    DatabaseOptions options;
    options.servers = servers;
    options.encode.seal_content = seal;
    options.encode.verify_aggregate = true;
    auto db = EncryptedXmlDatabase::Encode(xml, map, seed_, options);
    SSDB_CHECK(db.ok()) << db.status().ToString();
    return std::move(*db);
  }

  uint64_t Count(EncryptedXmlDatabase* db, const std::string& q) {
    auto result = db->Query(q, EngineKind::kAdvanced, MatchMode::kEquality);
    SSDB_CHECK(result.ok()) << q << ": " << result.status().ToString();
    return result->aggregate.Total();
  }

  gf::Field field_;
  prg::Seed seed_;
};

// UPDATE re-tag at m = 1, 2, 4: the mutated database must match a fresh
// encode of the post-mutation document node-for-node, and §8 aggregates —
// with the §9 proofs checked — must answer for the new document.
TEST_F(MutateTest, UpdateRetagMatchesFreshEncode) {
  mapping::TagMap map = MapFor({kLibXml}, field_);
  for (uint32_t m : {1u, 2u, 4u}) {
    SCOPED_TRACE("servers=" + std::to_string(m));
    auto db = MakeDb(kLibXml, map, m, /*seal=*/true);
    db->aggregation_engine()->set_verify(true);
    ASSERT_EQ(Count(db.get(), "count(/lib//book)"), 2u);
    ASSERT_EQ(Count(db.get(), "count(/lib//box)"), 1u);

    auto result = db->Update(8, "book", std::nullopt);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->version, 1u);
    EXPECT_EQ(result->stats.path_nodes, 3u);     // box, shelfB, lib
    EXPECT_EQ(result->stats.subtree_nodes, 1u);  // UPDATE touches one node

    EXPECT_EQ(Count(db.get(), "count(/lib//book)"), 3u);
    EXPECT_EQ(Count(db.get(), "count(/lib//box)"), 0u);

    auto expected = MakeDb(kLibBoxRetagged, map, 1, /*seal=*/true);
    ExpectSameDocument(Snapshot(db->client_filter(), true),
                       Snapshot(expected->client_filter(), true));
  }
}

// Text-only UPDATE takes the fast path: no sibling polynomial is fetched
// (the tree is unchanged), only the root path re-shares and re-seals.
TEST_F(MutateTest, UpdateTextOnlySkipsSiblingFetch) {
  mapping::TagMap map = MapFor({kLibXml}, field_);
  auto db = MakeDb(kLibXml, map, 2, /*seal=*/true);

  auto result = db->Update(4, "", std::optional<std::string>("T-ONE"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.children_fetched, 0u);
  EXPECT_EQ(result->stats.path_nodes, 4u);  // title, book, shelfA, lib

  auto node = db->client_filter()->GetNode(4);
  ASSERT_TRUE(node.ok());
  auto revealed = db->client_filter()->Reveal(*node);
  ASSERT_TRUE(revealed.ok()) << revealed.status().ToString();
  EXPECT_EQ(revealed->name, "title");
  EXPECT_EQ(revealed->text, "T-ONE");

  db->aggregation_engine()->set_verify(true);
  EXPECT_EQ(Count(db.get(), "count(/lib//book)"), 2u);

  constexpr char kAfter[] =
      "<lib><shelfA><book><title>T-ONE</title></book>"
      "<book><title>t2</title></book></shelfA>"
      "<shelfB><box><coin>c1</coin></box></shelfB></lib>";
  auto expected = MakeDb(kAfter, map, 1, /*seal=*/true);
  ExpectSameDocument(Snapshot(db->client_filter(), true),
                     Snapshot(expected->client_filter(), true));
}

TEST_F(MutateTest, RejectsInvalidMutations) {
  mapping::TagMap map = MapFor({kLibXml}, field_);
  auto db = MakeDb(kLibXml, map, 2, /*seal=*/false);

  // Neither tag nor text changes.
  EXPECT_EQ(db->Update(4, "", std::nullopt).status().code(),
            StatusCode::kInvalidArgument);
  // Text edit on a database encoded without sealed content.
  EXPECT_EQ(db->Update(4, "", std::optional<std::string>("x")).status().code(),
            StatusCode::kFailedPrecondition);
  // A tag outside the map (the key material does not cover it).
  EXPECT_EQ(db->Update(8, "pamphlet", std::nullopt).status().code(),
            StatusCode::kInvalidArgument);
  // The document root cannot be deleted.
  EXPECT_EQ(db->Delete(1).status().code(), StatusCode::kInvalidArgument);
  // A fragment with no elements cannot be inserted.
  EXPECT_FALSE(db->Insert(2, "   ").ok());
  // A fragment using an unmapped tag is refused before any share moves.
  EXPECT_FALSE(db->Insert(2, "<pamphlet/>").ok());
  // No such node.
  EXPECT_FALSE(db->Update(99, "book", std::nullopt).ok());

  // Nothing above may have left a pending txn or advanced the version.
  auto states = db->server_filter()->MutationStates();
  ASSERT_TRUE(states.ok());
  for (const storage::MutationState& st : *states) {
    EXPECT_EQ(st.pending_txn, 0u);
    EXPECT_EQ(st.version, 0u);
  }
}

TEST_F(MutateTest, InsertMatchesFreshEncode) {
  mapping::TagMap map = MapFor({kLibXml}, field_);
  auto db = MakeDb(kLibXml, map, 2, /*seal=*/true);

  auto result = db->Insert(2, "<box><coin>c9</coin><coin>c10</coin></box>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->version, 1u);
  EXPECT_EQ(result->stats.subtree_nodes, 3u);  // box + 2 coins
  EXPECT_EQ(result->stats.path_nodes, 2u);     // shelfA, lib

  db->aggregation_engine()->set_verify(true);
  EXPECT_EQ(Count(db.get(), "count(/lib//coin)"), 3u);
  EXPECT_EQ(Count(db.get(), "count(/lib//box)"), 2u);

  constexpr char kAfter[] =
      "<lib><shelfA><book><title>t1</title></book>"
      "<book><title>t2</title></book>"
      "<box><coin>c9</coin><coin>c10</coin></box></shelfA>"
      "<shelfB><box><coin>c1</coin></box></shelfB></lib>";
  auto expected = MakeDb(kAfter, map, 1, /*seal=*/true);
  ExpectSameDocument(Snapshot(db->client_filter(), true),
                     Snapshot(expected->client_filter(), true));
}

TEST_F(MutateTest, DeleteMatchesFreshEncode) {
  mapping::TagMap map = MapFor({kLibXml}, field_);
  auto db = MakeDb(kLibXml, map, 2, /*seal=*/true);

  auto result = db->Delete(3);  // first book and its title
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->version, 1u);
  EXPECT_EQ(result->stats.subtree_nodes, 2u);
  EXPECT_EQ(result->stats.path_nodes, 2u);  // shelfA, lib

  db->aggregation_engine()->set_verify(true);
  EXPECT_EQ(Count(db.get(), "count(/lib//book)"), 1u);
  EXPECT_EQ(Count(db.get(), "count(/lib//title)"), 1u);

  constexpr char kAfter[] =
      "<lib><shelfA><book><title>t2</title></book></shelfA>"
      "<shelfB><box><coin>c1</coin></box></shelfB></lib>";
  auto expected = MakeDb(kAfter, map, 1, /*seal=*/true);
  ExpectSameDocument(Snapshot(db->client_filter(), true),
                     Snapshot(expected->client_filter(), true));
}

// A chain of mutations: every commit bumps the version by one, and the end
// state matches one fresh encode of the final document.
TEST_F(MutateTest, MutationSequenceAdvancesVersions) {
  mapping::TagMap map = MapFor({kLibXml}, field_);
  auto db = MakeDb(kLibXml, map, 2, /*seal=*/true);

  auto insert = db->Insert(7, "<box><coin>cx</coin></box>");
  ASSERT_TRUE(insert.ok()) << insert.status().ToString();
  EXPECT_EQ(insert->version, 1u);
  auto update = db->Update(8, "book", std::nullopt);
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  EXPECT_EQ(update->version, 2u);
  auto erase = db->Delete(3);
  ASSERT_TRUE(erase.ok()) << erase.status().ToString();
  EXPECT_EQ(erase->version, 3u);

  db->aggregation_engine()->set_verify(true);
  EXPECT_EQ(Count(db.get(), "count(/lib//book)"), 2u);
  EXPECT_EQ(Count(db.get(), "count(/lib//coin)"), 2u);

  constexpr char kAfter[] =
      "<lib><shelfA><book><title>t2</title></book></shelfA>"
      "<shelfB><book><coin>c1</coin></book>"
      "<box><coin>cx</coin></box></shelfB></lib>";
  auto expected = MakeDb(kAfter, map, 1, /*seal=*/true);
  ExpectSameDocument(Snapshot(db->client_filter(), true),
                     Snapshot(expected->client_filter(), true));
}

// The §12 cost contract: the same mutation costs the same whether the
// document holds 9 nodes or ~50 — stats depend on the touched subtree and
// root path, not on document size.
TEST_F(MutateTest, MutationCostTracksSubtreeNotDocument) {
  // The big document differs only inside shelfB's box — off the mutation
  // paths used below.
  std::string big =
      "<lib><shelfA><book><title>t1</title></book>"
      "<book><title>t2</title></book></shelfA>"
      "<shelfB><box>";
  for (int i = 0; i < 40; ++i) big += "<coin>c</coin>";
  big += "</box></shelfB></lib>";
  mapping::TagMap map = MapFor({kLibXml}, field_);

  auto small_db = MakeDb(kLibXml, map, 1, /*seal=*/true);
  auto big_db = MakeDb(big, map, 1, /*seal=*/true);

  // Re-tag book(3) -> box: path and fanout are identical in both documents.
  auto small_up = small_db->Update(3, "box", std::nullopt);
  auto big_up = big_db->Update(3, "box", std::nullopt);
  ASSERT_TRUE(small_up.ok()) << small_up.status().ToString();
  ASSERT_TRUE(big_up.ok()) << big_up.status().ToString();
  EXPECT_EQ(small_up->stats.path_nodes, big_up->stats.path_nodes);
  EXPECT_EQ(small_up->stats.subtree_nodes, big_up->stats.subtree_nodes);
  EXPECT_EQ(small_up->stats.children_fetched, big_up->stats.children_fetched);
  EXPECT_EQ(small_up->stats.reshared_bytes, big_up->stats.reshared_bytes);

  // DELETE re-shares the root path only; its byte cost must not grow with
  // the deleted subtree (the subtree is erased, not rewritten).
  auto small_rm = MakeDb(kLibXml, map, 1, /*seal=*/true);
  auto big_rm = MakeDb(big, map, 1, /*seal=*/true);
  auto small_del = small_rm->Delete(8);
  auto big_del = big_rm->Delete(8);
  ASSERT_TRUE(small_del.ok()) << small_del.status().ToString();
  ASSERT_TRUE(big_del.ok()) << big_del.status().ToString();
  EXPECT_EQ(small_del->stats.subtree_nodes, 2u);
  EXPECT_EQ(big_del->stats.subtree_nodes, 41u);
  EXPECT_EQ(small_del->stats.path_nodes, big_del->stats.path_nodes);
  EXPECT_EQ(small_del->stats.reshared_bytes, big_del->stats.reshared_bytes);

  // INSERT cost grows with the fragment, not the document.
  auto ins_db = MakeDb(kLibXml, map, 1, /*seal=*/true);
  auto one = ins_db->Insert(7, "<box><coin>c</coin></box>");
  auto five = ins_db->Insert(7,
      "<box><coin>c</coin><coin>c</coin><coin>c</coin>"
      "<coin>c</coin><coin>c</coin></box>");
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  ASSERT_TRUE(five.ok()) << five.status().ToString();
  EXPECT_EQ(one->stats.subtree_nodes, 2u);
  EXPECT_EQ(five->stats.subtree_nodes, 6u);
  EXPECT_GT(five->stats.reshared_bytes, one->stats.reshared_bytes);
}

// A prepare that fails on one slice aborts on all of them: no version
// moves, no pending txn lingers, the document stays byte-for-byte intact —
// and the same mutation succeeds afterwards.
TEST_F(MutateTest, PrepareFailureAbortsCleanly) {
  mapping::TagMap map = MapFor({kLibXml}, field_);
  auto db = MakeDb(kLibXml, map, 2, /*seal=*/true);
  auto before = Snapshot(db->client_filter(), true);

  encode::Mutator mutator(db->ring(), map, prg::Prg(seed_),
                          db->server_filter());
  auto planned = mutator.PlanUpdate(8, "book", std::nullopt);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  ASSERT_EQ(planned->plans.size(), 2u);
  planned->plans[1].base_version = 7;  // slice 1 will refuse this plan

  Status prepared =
      db->server_filter()->PrepareMutation(planned->txn, planned->plans);
  EXPECT_FALSE(prepared.ok());
  (void)db->server_filter()->AbortMutation(planned->txn);

  auto states = db->server_filter()->MutationStates();
  ASSERT_TRUE(states.ok());
  for (const storage::MutationState& st : *states) {
    EXPECT_EQ(st.pending_txn, 0u);
    EXPECT_EQ(st.version, 0u);
  }
  ExpectSameDocument(Snapshot(db->client_filter(), true), before);

  auto retry = db->Update(8, "book", std::nullopt);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->version, 1u);
}

// RecoverMutations on the facade: a txn prepared everywhere but committed
// nowhere rolls back; a txn any slice committed rolls forward.
TEST_F(MutateTest, RecoverMutationsDecidesStalledTxns) {
  mapping::TagMap map = MapFor({kLibXml}, field_);
  auto db = MakeDb(kLibXml, map, 2, /*seal=*/true);
  auto before = Snapshot(db->client_filter(), true);

  // Idle recovery is a no-op.
  ASSERT_TRUE(db->RecoverMutations().ok());

  encode::Mutator mutator(db->ring(), map, prg::Prg(seed_),
                          db->server_filter());

  // Stall A: prepared on both slices, coordinator dies before any commit.
  auto planned = mutator.PlanDelete(3);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  ASSERT_TRUE(
      db->server_filter()->PrepareMutation(planned->txn, planned->plans).ok());
  ASSERT_TRUE(db->RecoverMutations().ok());
  auto states = db->server_filter()->MutationStates();
  ASSERT_TRUE(states.ok());
  for (const storage::MutationState& st : *states) {
    EXPECT_EQ(st.pending_txn, 0u);
    EXPECT_EQ(st.version, 0u);
  }
  ExpectSameDocument(Snapshot(db->client_filter(), true), before);

  // Stall B: prepared on both, committed on slice 0 only — the decision is
  // made, recovery must finish it on slice 1.
  auto planned2 = mutator.PlanDelete(3);
  ASSERT_TRUE(planned2.ok()) << planned2.status().ToString();
  ASSERT_TRUE(
      db->server_filter()->PrepareMutation(planned2->txn, planned2->plans).ok());
  ASSERT_TRUE(db->slice_filter(0)->CommitMutation(planned2->txn).ok());
  ASSERT_TRUE(db->RecoverMutations().ok());
  states = db->server_filter()->MutationStates();
  ASSERT_TRUE(states.ok());
  for (const storage::MutationState& st : *states) {
    EXPECT_EQ(st.pending_txn, 0u);
    EXPECT_EQ(st.version, 1u);
  }
  constexpr char kAfter[] =
      "<lib><shelfA><book><title>t2</title></book></shelfA>"
      "<shelfB><box><coin>c1</coin></box></shelfB></lib>";
  auto expected = MakeDb(kAfter, map, 1, /*seal=*/true);
  ExpectSameDocument(Snapshot(db->client_filter(), true),
                     Snapshot(expected->client_filter(), true));
}

// The headline crash test, on the real disk backend: kill the coordinator
// between the phases, restart the m servers from their files, and drive the
// journaled txn to one verdict on every slice.
TEST_F(MutateTest, CrashBetweenPhasesRecoversOnDisk) {
  TempDir dir("mutate_2pc");
  std::string base = dir.FilePath("doc.ssdb");
  mapping::TagMap map = MapFor({kLibXml}, field_);

  DatabaseOptions options;
  options.backend = Backend::kDisk;
  options.disk_path = base;
  options.servers = 2;
  options.encode.seal_content = true;
  options.encode.verify_aggregate = true;
  auto db_or = EncryptedXmlDatabase::Encode(kLibXml, map, seed_, options);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  auto db = std::move(*db_or);
  gf::Ring ring = db->ring();
  auto original = Snapshot(db->client_filter(), true);

  encode::Mutator mutator(ring, map, prg::Prg(seed_), db->server_filter());
  auto planned = mutator.PlanUpdate(8, "book", std::nullopt);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();

  // Phase one lands (and is journaled) on slice 0 only; then the
  // coordinator "crashes" before reaching slice 1.
  ASSERT_TRUE(db->slice_filter(0)
                  ->PrepareMutation(planned->txn, {planned->plans[0]})
                  .ok());
  db.reset();

  struct Stack {
    std::vector<std::unique_ptr<storage::NodeStore>> stores;
    std::vector<std::unique_ptr<filter::ServerFilter>> backends;
    std::unique_ptr<filter::MultiServerFilter> fanout;
  };
  auto open_stack = [&]() {
    Stack s;
    std::vector<filter::ServerFilter*> ptrs;
    for (uint32_t i = 0; i < 2; ++i) {
      auto store =
          storage::DiskNodeStore::Open(core::ShareSlicePath(base, i, 2));
      SSDB_CHECK(store.ok()) << store.status().ToString();
      s.stores.push_back(std::move(*store));
      s.backends.push_back(std::make_unique<filter::LocalServerFilter>(
          ring, s.stores.back().get()));
      ptrs.push_back(s.backends.back().get());
    }
    s.fanout =
        std::make_unique<filter::MultiServerFilter>(ring, std::move(ptrs));
    return s;
  };
  // What a restarted coordinator runs (EncryptedXmlDatabase::
  // RecoverMutations over reconnected slices): commit iff any slice
  // committed, abort otherwise.
  auto recover = [](filter::ServerFilter* view) -> Status {
    for (int round = 0; round < 64; ++round) {
      auto states = view->MutationStates();
      if (!states.ok()) return states.status();
      uint64_t pending = 0;
      uint64_t committed = 0;
      for (const storage::MutationState& st : *states) {
        pending = std::max(pending, st.pending_txn);
        committed = std::max(committed, st.version);
      }
      if (pending == 0) return Status::OK();
      Status step = committed >= pending ? view->CommitMutation(pending)
                                        : view->AbortMutation(pending);
      if (!step.ok()) return step;
    }
    return Status::Internal("mutation recovery did not converge");
  };

  {
    Stack s = open_stack();
    // The journaled prepare survived the restart on exactly one slice.
    auto states = s.fanout->MutationStates();
    ASSERT_TRUE(states.ok()) << states.status().ToString();
    uint64_t pending = 0;
    int undecided = 0;
    for (const storage::MutationState& st : *states) {
      pending = std::max(pending, st.pending_txn);
      if (st.pending_txn != 0) ++undecided;
    }
    EXPECT_EQ(pending, 1u);
    EXPECT_EQ(undecided, 1);

    // No slice committed, so recovery rolls the txn back everywhere and
    // every slice reconstructs the original document.
    ASSERT_TRUE(recover(s.fanout.get()).ok());
    states = s.fanout->MutationStates();
    ASSERT_TRUE(states.ok());
    for (const storage::MutationState& st : *states) {
      EXPECT_EQ(st.pending_txn, 0u);
      EXPECT_EQ(st.version, 0u);
    }
    filter::ClientFilter client(ring, prg::Prg(seed_), s.fanout.get());
    ExpectSameDocument(Snapshot(&client, true), original);

    // Round two: prepared everywhere, committed on slice 0, crash before
    // slice 1 hears the commit.
    encode::Mutator mutator2(ring, map, prg::Prg(seed_), s.fanout.get());
    auto planned2 = mutator2.PlanUpdate(8, "book", std::nullopt);
    ASSERT_TRUE(planned2.ok()) << planned2.status().ToString();
    ASSERT_TRUE(
        s.fanout->PrepareMutation(planned2->txn, planned2->plans).ok());
    ASSERT_TRUE(s.backends[0]->CommitMutation(planned2->txn).ok());
  }  // crash: stores close with slice 1 still undecided

  {
    Stack s = open_stack();
    // Slice 0's commit is the verdict; recovery rolls slice 1 forward.
    ASSERT_TRUE(recover(s.fanout.get()).ok());
    auto states = s.fanout->MutationStates();
    ASSERT_TRUE(states.ok());
    for (const storage::MutationState& st : *states) {
      EXPECT_EQ(st.pending_txn, 0u);
      EXPECT_EQ(st.version, 1u);
    }
    filter::ClientFilter client(ring, prg::Prg(seed_), s.fanout.get());
    auto expected = MakeDb(kLibBoxRetagged, map, 1, /*seal=*/true);
    ExpectSameDocument(Snapshot(&client, true),
                       Snapshot(expected->client_filter(), true));
  }
}

// Mutations routed through the shard tier (DESIGN.md §10 + §12): the router
// plans on the owning group's stack, drives the two phases, and prefixes
// every error with the document and group — the §9 blame idiom.
TEST_F(MutateTest, RouterForwardsMutationsWithBlame) {
  mapping::TagMap map = MapFor({kLibXml}, field_);
  auto db = MakeDb(kLibXml, map, 2, /*seal=*/true);

  shard::ShardCatalog catalog;
  shard::ShardEntry entry;
  entry.doc_id = "doc-a";
  entry.group = 3;
  entry.slices = {"mem://doc-a/0", "mem://doc-a/1"};
  ASSERT_TRUE(catalog.Add(entry).ok());
  std::map<std::string, std::vector<filter::ServerFilter*>> backends;
  backends["doc-a"] = {db->slice_filter(0), db->slice_filter(1)};
  core::CorpusOptions copts;
  auto router = shard::Router::FromBackends(catalog, &map, seed_, {}, copts,
                                            backends);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  ASSERT_TRUE((*router)->RecoverDoc("doc-a").ok());
  auto result = (*router)->UpdateDoc("doc-a", 8, "book", std::nullopt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->version, 1u);
  EXPECT_EQ(result->doc_id, "doc-a");
  EXPECT_EQ(result->group, 3u);

  auto query = query::ParseQuery("count(/lib//book)");
  ASSERT_TRUE(query.ok());
  auto count = (*router)->QueryDoc("doc-a", *query, MatchMode::kEquality);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count->aggregate.Total(), 3u);

  // Unknown documents and bad mutations come back attributed.
  EXPECT_EQ((*router)->DeleteDoc("ghost", 2).status().code(),
            StatusCode::kNotFound);
  Status blamed = (*router)->DeleteDoc("doc-a", 1).status();
  EXPECT_FALSE(blamed.ok());
  EXPECT_NE(blamed.message().find("doc doc-a (group 3)"), std::string::npos)
      << blamed.ToString();
}

// Satellite: the side column store lifts the heap row's ~140-tag cap. A
// 1000-tag map — 28 KB of §8 columns plus 112 KB of §9 track per node,
// far beyond a 4 KiB page — encodes to disk, answers verified aggregates,
// mutates, and survives a reopen.
TEST_F(MutateTest, ThousandTagMapEncodesAndMutatesOnDisk) {
  TempDir dir("mutate_bigmap");
  std::string path = dir.FilePath("big.ssdb");
  auto field = gf::Field::Make(1009);
  ASSERT_TRUE(field.ok());

  std::vector<std::string> names;
  names.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "t%04d", i);
    names.push_back(buf);
  }
  auto map = mapping::TagMap::FromNames(names, *field);
  ASSERT_TRUE(map.ok()) << map.status().ToString();

  std::string xml = "<t0000>";
  for (int i = 0; i < 40; ++i) {
    xml += "<t000" + std::to_string(1 + i % 4) + "/>";
  }
  xml += "</t0000>";

  DatabaseOptions options;
  options.p = 1009;
  options.backend = Backend::kDisk;
  options.disk_path = path;
  options.encode.verify_aggregate = true;
  auto db_or = EncryptedXmlDatabase::Encode(xml, *map, seed_, options);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  auto db = std::move(*db_or);
  gf::Ring ring = db->ring();

  db->aggregation_engine()->set_verify(true);
  EXPECT_EQ(Count(db.get(), "count(/t0000/t0001)"), 10u);

  auto result = db->Update(2, "t0500", std::nullopt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Count(db.get(), "count(/t0000/t0001)"), 9u);
  EXPECT_EQ(Count(db.get(), "count(/t0000/t0500)"), 1u);
  db.reset();

  // The blobs live in the side column store; both it and the mutation
  // survive a close/reopen cycle.
  auto store = storage::DiskNodeStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  filter::LocalServerFilter server(ring, store->get());
  filter::ClientFilter client(ring, prg::Prg(seed_), &server);
  auto node = client.GetNode(2);
  ASSERT_TRUE(node.ok());
  auto value = client.RecoverOwnValue(*node);
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_EQ(*value, *map->Lookup("t0500"));
  auto state = (*store)->GetMutationState();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->version, 1u);
  EXPECT_EQ(state->pending_txn, 0u);
}

}  // namespace
}  // namespace ssdb
