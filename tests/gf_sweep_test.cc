// Parameterized sweep of the full algebra stack across many fields —
// prime fields large and small plus extension fields — checking every
// invariant the encoding relies on end to end (DESIGN.md §2).

#include <gtest/gtest.h>

#include "encode/encoder.h"
#include "filter/client_filter.h"
#include "filter/server_filter.h"
#include "gf/dft.h"
#include "gf/poly.h"
#include "gf/share.h"
#include "mapping/tag_map.h"
#include "prg/prg.h"
#include "storage/memory_backend.h"
#include "util/random.h"

namespace ssdb::gf {
namespace {

struct FieldParam {
  uint32_t p;
  uint32_t e;
};

class GfSweepTest : public ::testing::TestWithParam<FieldParam> {
 protected:
  GfSweepTest()
      : field_(*Field::Make(GetParam().p, GetParam().e)),
        ring_(field_),
        evaluator_(ring_),
        rng_(GetParam().p * 1000 + GetParam().e) {}

  RingElem RandomElem() {
    RingElem f(ring_.n());
    for (auto& c : f) c = static_cast<Elem>(rng_.Uniform(field_.q()));
    return f;
  }

  Field field_;
  Ring ring_;
  Evaluator evaluator_;
  Random rng_;
};

TEST_P(GfSweepTest, ReductionPreservesNonzeroEvaluations) {
  for (int trial = 0; trial < 5; ++trial) {
    Poly f;
    int degree = static_cast<int>(ring_.n() * 2 + rng_.Uniform(ring_.n()));
    for (int i = 0; i <= degree; ++i) {
      f.coeffs.push_back(static_cast<Elem>(rng_.Uniform(field_.q())));
    }
    RingElem reduced = ring_.Reduce(f);
    for (uint32_t i = 0; i < ring_.n(); i += 3) {
      Elem t = evaluator_.point(i);
      EXPECT_EQ(ring_.Eval(reduced, t), PolyEval(field_, f, t));
    }
  }
}

TEST_P(GfSweepTest, DftRoundTripAndConvolutionTheorem) {
  RingElem a = RandomElem();
  RingElem b = RandomElem();
  EXPECT_EQ(evaluator_.Inverse(evaluator_.Forward(a)), a);
  EvalVector ea = evaluator_.Forward(a);
  EvalVector eb = evaluator_.Forward(b);
  evaluator_.PointwiseMulInto(&ea, eb);
  EXPECT_EQ(evaluator_.Inverse(ea), ring_.Mul(a, b));
}

TEST_P(GfSweepTest, ShareLinearityEverywhere) {
  RingElem secret = RandomElem();
  SharePair shares = SplitWithRandomness(ring_, secret, RandomElem());
  for (uint32_t i = 0; i < ring_.n(); ++i) {
    Elem t = evaluator_.point(i);
    EXPECT_EQ(EvalShares(ring_, shares.client, shares.server, t),
              ring_.Eval(secret, t));
  }
}

TEST_P(GfSweepTest, SerializationRoundTripsAtFieldWidth) {
  RingElem f = RandomElem();
  std::string bytes = ring_.Serialize(f);
  EXPECT_EQ(bytes.size(),
            (ring_.n() * static_cast<size_t>(field_.bit_width()) + 7) / 8);
  auto back = ring_.Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, f);
}

TEST_P(GfSweepTest, EndToEndEncodeAndRecoverTags) {
  // A small document must encode and support exact tag recovery in every
  // field (given enough room in the tag map: 4 tags + spare).
  if (field_.n() < 6) GTEST_SKIP() << "field too small for 4 tags + spare";
  auto map = mapping::TagMap::FromNames({"w", "x", "y", "z"}, field_);
  ASSERT_TRUE(map.ok());
  storage::MemoryNodeStore store;
  prg::Seed seed = prg::Seed::FromUint64(field_.q());
  encode::Encoder encoder(ring_, *map, prg::Prg(seed), &store);
  auto result = encoder.EncodeString("<w><x><y/><z/></x><y/></w>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->node_count, 5u);

  filter::LocalServerFilter server(ring_, &store);
  filter::ClientFilter client(ring_, prg::Prg(seed), &server);
  auto root = client.Root();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*client.RecoverOwnValue(*root), *map->Lookup("w"));
  EXPECT_TRUE(*client.ContainsValue(*root, *map->Lookup("z")));
  auto children = client.Children(*root);
  ASSERT_TRUE(children.ok());
  ASSERT_EQ(children->size(), 2u);
  EXPECT_EQ(*client.RecoverOwnValue((*children)[0]), *map->Lookup("x"));
  EXPECT_EQ(*client.RecoverOwnValue((*children)[1]), *map->Lookup("y"));
  EXPECT_FALSE(*client.ContainsValue((*children)[1], *map->Lookup("z")));
}

TEST_P(GfSweepTest, PrgElementsUniformInField) {
  prg::Prg prg(prg::Seed::FromUint64(1));
  auto stream = prg.StreamForNode(3);
  std::vector<uint32_t> histogram(field_.q(), 0);
  const int draws = static_cast<int>(field_.q()) * 200;
  for (int i = 0; i < draws; ++i) {
    Elem e = stream.NextElem(field_);
    ASSERT_LT(e, field_.q());
    ++histogram[e];
  }
  for (uint32_t v = 0; v < field_.q(); ++v) {
    EXPECT_GT(histogram[v], 100) << "value " << v;  // expected 200
    EXPECT_LT(histogram[v], 320) << "value " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fields, GfSweepTest,
    ::testing::Values(FieldParam{5, 1}, FieldParam{13, 1}, FieldParam{29, 1},
                      FieldParam{83, 1}, FieldParam{127, 1},
                      FieldParam{251, 1}, FieldParam{3, 4},
                      FieldParam{7, 2}, FieldParam{2, 8}),
    [](const auto& info) {
      return "p" + std::to_string(info.param.p) + "e" +
             std::to_string(info.param.e);
    });

}  // namespace
}  // namespace ssdb::gf
