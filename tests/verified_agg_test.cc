// Verifiable aggregation (DESIGN.md §9): the byzantine-server battery.
//
// Honest deployments must verify with zero false positives across
// m = 1, 2, 4, both engines and all four aggregate forms; every injected
// single-server fault (bit flips, word swaps, stale replays, group drops,
// proof-only corruption) must turn the query into a Corruption error that
// *names the tampering server*, never a silently wrong answer. A seed-sweep
// property test replays the same claim over randomized documents, PRG
// seeds and fault positions.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/database.h"
#include "fault_injection.h"
#include "filter/multi_server_filter.h"
#include "rpc/client.h"
#include "rpc/multi_session.h"
#include "rpc/server.h"
#include "xmark/generator.h"

namespace ssdb {
namespace {

using testing_helpers::ByzantineChannel;
using testing_helpers::Fault;
using testing_helpers::FaultConfig;
using testing_helpers::TamperingServerFilter;

// One of each aggregate form (DESIGN.md §8): scalar count, sum, exists,
// and a group-by over the wildcard final step.
constexpr const char* kAggQueries[] = {
    "count(/site/people/person)",
    "sum(//item)",
    "exists(/site/regions)",
    "count(/site/*)",
};

std::string CorpusXml() {
  xmark::GeneratorOptions gen;
  gen.target_bytes = 20 << 10;
  gen.seed = 77;
  return xmark::GenerateAuctionDocument(gen).xml;
}

class VerifiedAggTest : public ::testing::Test {
 protected:
  VerifiedAggTest()
      : field_(*gf::Field::Make(83)),
        ring_(field_),
        map_(*core::EncryptedXmlDatabase::TagMapForDtd(xmark::AuctionDtd(),
                                                       field_, false)),
        seed_(prg::Seed::FromUint64(2718)),
        xml_(CorpusXml()) {}

  std::unique_ptr<core::EncryptedXmlDatabase> Encode(uint32_t servers,
                                                     bool with_track = true) {
    return EncodeXml(xml_, seed_, servers, with_track);
  }

  std::unique_ptr<core::EncryptedXmlDatabase> EncodeXml(
      const std::string& xml, const prg::Seed& seed, uint32_t servers,
      bool with_track) {
    core::DatabaseOptions options;
    options.backend = core::Backend::kMemory;
    options.servers = servers;
    options.encode.verify_aggregate = with_track;
    auto db = core::EncryptedXmlDatabase::Encode(xml, map_, seed, options);
    SSDB_CHECK(db.ok()) << db.status().ToString();
    return std::move(*db);
  }

  // A client-side stack over the database's share slices with (optionally)
  // one slice wrapped in the fault-injection harness.
  struct Deployment {
    std::unique_ptr<TamperingServerFilter> tampered;
    std::unique_ptr<filter::MultiServerFilter> fanout;
    std::unique_ptr<filter::ClientFilter> client;
    std::unique_ptr<query::SimpleEngine> simple;
    std::unique_ptr<query::AdvancedEngine> advanced;
    std::unique_ptr<agg::AggregationEngine> agg;

    query::QueryEngine* engine(bool use_advanced) {
      return use_advanced ? static_cast<query::QueryEngine*>(advanced.get())
                          : static_cast<query::QueryEngine*>(simple.get());
    }
  };

  Deployment Deploy(core::EncryptedXmlDatabase* db, uint32_t servers,
                    std::optional<uint32_t> victim, FaultConfig config,
                    const prg::Seed& seed) {
    Deployment d;
    std::vector<filter::ServerFilter*> backends;
    for (uint32_t i = 0; i < servers; ++i) {
      backends.push_back(db->slice_filter(i));
    }
    if (victim.has_value()) {
      d.tampered = std::make_unique<TamperingServerFilter>(
          ring_, backends[*victim], config);
      backends[*victim] = d.tampered.get();
    }
    d.fanout =
        std::make_unique<filter::MultiServerFilter>(ring_, std::move(backends));
    d.client = std::make_unique<filter::ClientFilter>(ring_, prg::Prg(seed),
                                                      d.fanout.get());
    d.simple = std::make_unique<query::SimpleEngine>(d.client.get(), &map_);
    d.advanced = std::make_unique<query::AdvancedEngine>(d.client.get(), &map_);
    d.agg = std::make_unique<agg::AggregationEngine>(d.client.get(), &map_);
    d.agg->set_verify(true);
    return d;
  }

  // A small two-group direct-API spec whose pres/groups/fault position vary
  // with `salt` — the unit of the seed-sweep property test.
  agg::Spec SweepSpec(uint64_t salt, uint64_t node_count) const {
    agg::Spec spec;
    spec.columns = agg::ColBit(agg::Col::kEqualSelf) |
                   agg::ColBit(agg::Col::kEqualDesc);
    spec.value_count = static_cast<uint32_t>(map_.size());
    uint32_t g0 = static_cast<uint32_t>(salt % map_.size());
    spec.value_indexes = {g0,
                          static_cast<uint32_t>((g0 + 1) % map_.size())};
    std::set<uint32_t> pres = {
        1, static_cast<uint32_t>(1 + (salt * 7) % node_count),
        static_cast<uint32_t>(1 + (salt * 13) % node_count)};
    spec.pres.assign(pres.begin(), pres.end());
    return spec;
  }

  gf::Field field_;
  gf::Ring ring_;
  mapping::TagMap map_;
  prg::Seed seed_;
  std::string xml_;
};

TEST_F(VerifiedAggTest, HonestDeploymentVerifiesWithZeroFalsePositives) {
  for (uint32_t servers : {1u, 2u, 4u}) {
    auto db = Encode(servers);
    for (core::EngineKind engine :
         {core::EngineKind::kSimple, core::EngineKind::kAdvanced}) {
      for (const char* text : kAggQueries) {
        SCOPED_TRACE(std::string(text) + " m=" + std::to_string(servers));
        // Unverified baseline first, then the same query under set_verify.
        db->aggregation_engine()->set_verify(false);
        auto plain = db->Query(text, engine, query::MatchMode::kEquality);
        ASSERT_TRUE(plain.ok()) << plain.status().ToString();
        ASSERT_TRUE(plain->is_aggregate);
        EXPECT_FALSE(plain->aggregate.verified);

        db->aggregation_engine()->set_verify(true);
        auto verified = db->Query(text, engine, query::MatchMode::kEquality);
        ASSERT_TRUE(verified.ok()) << verified.status().ToString();
        ASSERT_TRUE(verified->is_aggregate);
        EXPECT_TRUE(verified->aggregate.verified);
        EXPECT_GT(verified->aggregate.proof_words, 0u);
        EXPECT_EQ(verified->aggregate.values, plain->aggregate.values);
        EXPECT_EQ(verified->aggregate.group_names,
                  plain->aggregate.group_names);
        // The proof volume reaches QueryStats (ssdb_query --stats).
        EXPECT_GT(verified->stats.eval.proof_words, 0u);
        EXPECT_GT(verified->stats.eval.verified_aggregate_ops, 0u);
      }
    }
  }
}

TEST_F(VerifiedAggTest, TamperBatteryDetectsAndAttributesEveryFault) {
  struct FaultCase {
    Fault fault;
    const char* label;
  };
  constexpr FaultCase kFaults[] = {
      {Fault::kBitFlip, "bit-flip"},
      {Fault::kWordSwap, "word-swap"},
      {Fault::kStaleReplay, "stale-replay"},
      {Fault::kGroupDrop, "group-drop"},
      {Fault::kProofOnly, "proof-only"},
  };
  for (uint32_t servers : {2u, 4u}) {
    auto db = Encode(servers);
    for (uint32_t victim : {0u, servers - 1}) {
      for (const FaultCase& fc : kFaults) {
        // Only slice 0 carries the §9 track; proof-only corruption anywhere
        // else has nothing to corrupt.
        if (fc.fault == Fault::kProofOnly && victim != 0) continue;
        for (bool use_advanced : {false, true}) {
          for (const char* text : kAggQueries) {
            SCOPED_TRACE(std::string(fc.label) + " victim=" +
                         std::to_string(victim) + " m=" +
                         std::to_string(servers) + " " + text +
                         (use_advanced ? " [advanced]" : " [simple]"));
            FaultConfig config;
            config.fault = fc.fault;
            config.on_aggregate = true;
            config.offset = 0;
            config.bit = 7;
            Deployment d = Deploy(db.get(), servers, victim, config, seed_);

            if (fc.fault == Fault::kStaleReplay) {
              // The replay adversary answers the second request with the
              // first reply; the priming query itself is honest.
              auto prime = *query::ParseQuery("count(//bidder)");
              auto primed = d.agg->Execute(d.engine(use_advanced), prime,
                                           query::MatchMode::kEquality,
                                           nullptr);
              ASSERT_TRUE(primed.ok()) << primed.status().ToString();
              EXPECT_TRUE(primed->verified);
            }

            auto parsed = *query::ParseQuery(text);
            auto result = d.agg->Execute(d.engine(use_advanced), parsed,
                                         query::MatchMode::kEquality, nullptr);
            ASSERT_FALSE(result.ok()) << "fault escaped verification";
            EXPECT_EQ(result.status().code(), StatusCode::kCorruption)
                << result.status().ToString();
            std::string blame = "server " + std::to_string(victim);
            EXPECT_NE(result.status().message().find(blame),
                      std::string::npos)
                << result.status().ToString();
            EXPECT_GE(d.tampered->faults_injected(), 1u);
          }
        }
      }
    }
  }
}

TEST_F(VerifiedAggTest, RemoteTamperIsAttributedOverTheWire) {
  // End-to-end over ops 18/19: two server threads on in-process channels,
  // the second one compromised server-side.
  auto db = Encode(2);
  auto run = [&](bool tamper) -> StatusOr<core::QueryResult> {
    FaultConfig config;
    config.fault = Fault::kBitFlip;
    config.on_aggregate = true;
    config.bit = 3;
    TamperingServerFilter tampered(ring_, db->slice_filter(1), config);
    std::vector<std::unique_ptr<rpc::ServerThread>> threads;
    std::vector<std::unique_ptr<rpc::Channel>> channels;
    for (uint32_t i = 0; i < 2; ++i) {
      rpc::ChannelPair pair = rpc::CreateInProcessChannelPair();
      filter::ServerFilter* filter =
          (tamper && i == 1) ? static_cast<filter::ServerFilter*>(&tampered)
                             : db->slice_filter(i);
      threads.push_back(std::make_unique<rpc::ServerThread>(
          ring_, filter, std::move(pair.server)));
      channels.push_back(std::move(pair.client));
    }
    auto session =
        *rpc::MultiServerSession::FromChannels(ring_, std::move(channels));
    filter::ClientFilter client(ring_, prg::Prg(seed_), session->filter());
    query::AdvancedEngine engine(&client, &map_);
    agg::AggregationEngine aggregation(&client, &map_);
    aggregation.set_verify(true);
    auto parsed = *query::ParseQuery("count(//item)");
    auto result = aggregation.Execute(&engine, parsed,
                                      query::MatchMode::kEquality, nullptr);
    SSDB_CHECK_OK(session->Shutdown());
    if (!result.ok()) return result.status();
    core::QueryResult out;
    out.is_aggregate = true;
    out.aggregate = std::move(*result);
    return out;
  };

  auto honest = run(/*tamper=*/false);
  ASSERT_TRUE(honest.ok()) << honest.status().ToString();
  EXPECT_TRUE(honest->aggregate.verified);
  auto local = db->Query("count(//item)", core::EngineKind::kAdvanced,
                         query::MatchMode::kEquality);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(honest->aggregate.values, local->aggregate.values);

  auto tampered = run(/*tamper=*/true);
  ASSERT_FALSE(tampered.ok());
  EXPECT_EQ(tampered.status().code(), StatusCode::kCorruption);
  EXPECT_NE(tampered.status().message().find("server 1"), std::string::npos)
      << tampered.status().ToString();
}

TEST_F(VerifiedAggTest, WireBitFlipsNeverYieldAWrongVerifiedAnswer) {
  // Transport-level byzantine behaviour: every reply frame gets one random
  // bit flipped. Whatever survives decoding must either fail verification
  // or still carry the true answer (a flip confined to the frame's
  // ok-marker byte can leave the payload intact) — never a silently wrong
  // one.
  auto db = Encode(1);
  agg::Spec spec = SweepSpec(/*salt=*/3, db->encode_result().node_count);
  auto truth = db->client_filter()->Aggregate(spec);
  ASSERT_TRUE(truth.ok()) << truth.status().ToString();

  uint64_t rejected = 0;
  for (uint64_t trial = 0; trial < 12; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    rpc::ChannelPair pair = rpc::CreateInProcessChannelPair();
    rpc::ServerThread server(ring_, db->slice_filter(0),
                             std::move(pair.server));
    auto byzantine = std::make_unique<ByzantineChannel>(
        std::move(pair.client), /*probability=*/1.0, /*rng_seed=*/trial + 1);
    ByzantineChannel* byzantine_view = byzantine.get();
    rpc::RemoteServerFilter remote(ring_, std::move(byzantine));
    filter::ClientFilter client(ring_, prg::Prg(seed_), &remote);
    auto result = client.AggregateVerified(spec);
    if (result.ok()) {
      EXPECT_EQ(result->totals, *truth);
    } else {
      ++rejected;
    }
    EXPECT_GT(byzantine_view->corruptions(), 0u);
  }
  EXPECT_GT(rejected, 0u);
}

TEST_F(VerifiedAggTest, MissingTrackFailsClosedWithGuidance) {
  for (uint32_t servers : {1u, 2u}) {
    SCOPED_TRACE("m=" + std::to_string(servers));
    auto db = Encode(servers, /*with_track=*/false);
    db->aggregation_engine()->set_verify(true);
    auto result = db->Query("count(//item)", core::EngineKind::kAdvanced,
                            query::MatchMode::kEquality);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition)
        << result.status().ToString();
    EXPECT_NE(result.status().message().find("--verify-agg"),
              std::string::npos)
        << result.status().ToString();

    // Unverified aggregation over the same database still works: the track
    // is strictly optional.
    db->aggregation_engine()->set_verify(false);
    auto plain = db->Query("count(//item)", core::EngineKind::kAdvanced,
                           query::MatchMode::kEquality);
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();
    EXPECT_FALSE(plain->aggregate.verified);
  }
}

class VerifiedAggSweepTest : public VerifiedAggTest {
 protected:
  // The property under test: over random documents, PRG seeds, server
  // counts and fault positions, an honest deployment always verifies and a
  // single corrupted partial never does — and the blame lands on the
  // corrupted server.
  void RunSeedSweep(uint64_t sweeps) {
    for (uint64_t sweep = 0; sweep < sweeps; ++sweep) {
      xmark::GeneratorOptions gen;
      gen.target_bytes = 6 << 10;
      gen.seed = static_cast<uint32_t>(1000 + sweep);
      std::string xml = xmark::GenerateAuctionDocument(gen).xml;
      prg::Seed seed = prg::Seed::FromUint64(0x5eed0000 + sweep);
      for (uint32_t servers : {1u, 2u, 4u}) {
        SCOPED_TRACE("sweep=" + std::to_string(sweep) + " m=" +
                     std::to_string(servers));
        auto db = EncodeXml(xml, seed, servers, /*with_track=*/true);
        agg::Spec spec = SweepSpec(sweep, db->encode_result().node_count);

        // Honest arm: verifies, and agrees with the unverified path.
        auto honest = db->client_filter()->AggregateVerified(spec);
        ASSERT_TRUE(honest.ok()) << honest.status().ToString();
        EXPECT_GT(honest->proof_words, 0u);
        auto plain = db->client_filter()->Aggregate(spec);
        ASSERT_TRUE(plain.ok());
        EXPECT_EQ(honest->totals, *plain);

        // Corrupted arm: one server, one flipped bit (or, when slice 0 is
        // the victim on odd sweeps, a proof-track-only flip).
        uint32_t victim = static_cast<uint32_t>(sweep % servers);
        FaultConfig config;
        config.fault = (victim == 0 && (sweep & 1)) ? Fault::kProofOnly
                                                    : Fault::kBitFlip;
        config.on_aggregate = true;
        config.offset = sweep % spec.value_indexes.size();
        config.bit = static_cast<uint32_t>((sweep * 11) % 32);
        config.rng_seed = sweep + 1;
        Deployment d = Deploy(db.get(), servers, victim, config, seed);
        auto bad = d.client->AggregateVerified(spec);
        ASSERT_FALSE(bad.ok()) << "corrupted partial verified";
        EXPECT_EQ(bad.status().code(), StatusCode::kCorruption)
            << bad.status().ToString();
        std::string blame = "server " + std::to_string(victim);
        EXPECT_NE(bad.status().message().find(blame), std::string::npos)
            << bad.status().ToString();
        EXPECT_GE(d.tampered->faults_injected(), 1u);
      }
    }
  }
};

TEST_F(VerifiedAggSweepTest, SeedSweepHonestAlwaysCorruptedNever) {
  RunSeedSweep(3);
}

// The wide sweep lives behind the `slow` ctest label (see CMakeLists.txt).
TEST_F(VerifiedAggSweepTest, LargeSeedSweepHonestAlwaysCorruptedNever) {
  RunSeedSweep(24);
}

}  // namespace
}  // namespace ssdb
