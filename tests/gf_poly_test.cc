#include <gtest/gtest.h>

#include "gf/poly.h"
#include "util/random.h"

namespace ssdb::gf {
namespace {

class PolyTest : public ::testing::Test {
 protected:
  PolyTest() : field_(*Field::Make(83)) {}

  Poly RandomPoly(Random* rng, int max_degree) {
    Poly f;
    int degree = static_cast<int>(rng->Uniform(max_degree + 1));
    for (int i = 0; i <= degree; ++i) {
      f.coeffs.push_back(static_cast<Elem>(rng->Uniform(field_.q())));
    }
    PolyNormalize(&f);
    return f;
  }

  Field field_;
};

TEST_F(PolyTest, NormalizeDropsTrailingZeros) {
  Poly f{{1, 2, 0, 0}};
  PolyNormalize(&f);
  EXPECT_EQ(f.coeffs, (std::vector<Elem>{1, 2}));
  EXPECT_EQ(f.Degree(), 1);
  Poly zero{{0, 0}};
  PolyNormalize(&zero);
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.Degree(), -1);
}

TEST_F(PolyTest, XMinusEvaluatesToZeroAtRoot) {
  Poly f = PolyXMinus(field_, 17);
  EXPECT_EQ(PolyEval(field_, f, 17), 0u);
  EXPECT_NE(PolyEval(field_, f, 18), 0u);
}

TEST_F(PolyTest, AddSubInverse) {
  Random rng(11);
  for (int i = 0; i < 50; ++i) {
    Poly a = RandomPoly(&rng, 10);
    Poly b = RandomPoly(&rng, 10);
    Poly sum = PolyAdd(field_, a, b);
    Poly back = PolySub(field_, sum, b);
    EXPECT_EQ(back.coeffs, a.coeffs);
  }
}

TEST_F(PolyTest, MulDegreeAndEvalHomomorphism) {
  Random rng(13);
  for (int i = 0; i < 50; ++i) {
    Poly a = RandomPoly(&rng, 8);
    Poly b = RandomPoly(&rng, 8);
    Poly prod = PolyMul(field_, a, b);
    if (!a.IsZero() && !b.IsZero()) {
      EXPECT_EQ(prod.Degree(), a.Degree() + b.Degree());
    } else {
      EXPECT_TRUE(prod.IsZero());
    }
    // eval(a*b, x) == eval(a,x) * eval(b,x) at several points.
    for (Elem x : {0u, 1u, 2u, 50u, 82u}) {
      EXPECT_EQ(PolyEval(field_, prod, x),
                field_.Mul(PolyEval(field_, a, x), PolyEval(field_, b, x)));
    }
  }
}

TEST_F(PolyTest, DivModReconstructs) {
  Random rng(17);
  for (int i = 0; i < 50; ++i) {
    Poly a = RandomPoly(&rng, 12);
    Poly b = RandomPoly(&rng, 6);
    if (b.IsZero()) continue;
    auto division = PolyDivMod(field_, a, b);
    ASSERT_TRUE(division.ok());
    // a == q*b + r with deg(r) < deg(b).
    Poly recon = PolyAdd(field_, PolyMul(field_, division->quotient, b),
                         division->remainder);
    EXPECT_EQ(recon.coeffs, a.coeffs);
    EXPECT_LT(division->remainder.Degree(), b.Degree());
  }
}

TEST_F(PolyTest, DivisionByZeroFails) {
  EXPECT_FALSE(PolyDivMod(field_, Poly{{1, 1}}, Poly{}).ok());
}

TEST_F(PolyTest, ExactDivisionOfProductOfMonomials) {
  // ((x-1)(x-2)(x-3)) / (x-2) = (x-1)(x-3).
  Poly prod = PolyMul(
      field_, PolyMul(field_, PolyXMinus(field_, 1), PolyXMinus(field_, 2)),
      PolyXMinus(field_, 3));
  auto division = PolyDivMod(field_, prod, PolyXMinus(field_, 2));
  ASSERT_TRUE(division.ok());
  EXPECT_TRUE(division->remainder.IsZero());
  Poly expected = PolyMul(field_, PolyXMinus(field_, 1),
                          PolyXMinus(field_, 3));
  EXPECT_EQ(division->quotient.coeffs, expected.coeffs);
}

TEST_F(PolyTest, GcdOfProductsIsCommonFactor) {
  Poly common = PolyXMinus(field_, 7);
  Poly a = PolyMul(field_, common, PolyXMinus(field_, 9));
  Poly b = PolyMul(field_, common, PolyXMinus(field_, 11));
  Poly gcd = PolyGcd(field_, a, b);
  EXPECT_EQ(gcd.coeffs, common.coeffs);  // monic already
}

TEST_F(PolyTest, ScaleByZeroGivesZero) {
  Poly f{{1, 2, 3}};
  EXPECT_TRUE(PolyScale(field_, f, 0).IsZero());
}

TEST_F(PolyTest, ToStringReadable) {
  auto field5 = *Field::Make(5);
  Poly f{{3, 2, 3, 2}};
  EXPECT_EQ(PolyToString(field5, f), "2x^3 + 3x^2 + 2x + 3");
  EXPECT_EQ(PolyToString(field5, Poly{}), "0");
}

}  // namespace
}  // namespace ssdb::gf
