#include <gtest/gtest.h>

#include "trie/trie.h"
#include "trie/trie_xml.h"
#include "xml/dom.h"
#include "xml/writer.h"

namespace ssdb::trie {
namespace {

TEST(TrieTest, SplitIntoWordsNormalizes) {
  EXPECT_EQ(SplitIntoWords("Joan Johnson"),
            (std::vector<std::string>{"joan", "johnson"}));
  EXPECT_EQ(SplitIntoWords("  Hello, World!42 "),
            (std::vector<std::string>{"hello", "world", "42"}));
  EXPECT_TRUE(SplitIntoWords("...").empty());
}

TEST(TrieTest, CompressedSharesPrefixes) {
  // Fig. 2(b): "Joan Johnson" — j-o shared, then a-n and h-n-s-o-n.
  Trie trie = BuildTrieFromText("Joan Johnson", /*compressed=*/true);
  EXPECT_TRUE(trie.ContainsWord("joan"));
  EXPECT_TRUE(trie.ContainsWord("johnson"));
  EXPECT_FALSE(trie.ContainsWord("jo"));
  EXPECT_TRUE(trie.ContainsPrefix("jo"));
  EXPECT_FALSE(trie.ContainsPrefix("x"));
  // Nodes: j,o shared (2) + a,n (2) + h,n,s,o,n (5) + 2 terminals = 11.
  EXPECT_EQ(trie.NodeCount(), 11u);
  EXPECT_EQ(trie.Words(),
            (std::vector<std::string>{"joan", "johnson"}));
}

TEST(TrieTest, CompressedDeduplicatesRepeats) {
  Trie trie = BuildTrieFromText("cat cat cat", /*compressed=*/true);
  EXPECT_EQ(trie.NodeCount(), 4u);  // c,a,t + terminal
  EXPECT_EQ(trie.Words().size(), 1u);
}

TEST(TrieTest, UncompressedKeepsEveryOccurrence) {
  // Fig. 2(c): no sharing at all.
  Trie trie = BuildTrieFromText("cat cat", /*compressed=*/false);
  EXPECT_EQ(trie.NodeCount(), 8u);  // 2 * (c,a,t + terminal)
  EXPECT_TRUE(trie.ContainsWord("cat"));
}

TEST(TrieTest, StatsReflectDeduplication) {
  TrieStats compressed = AnalyzeText("the cat and the dog", true);
  EXPECT_EQ(compressed.word_count, 5u);
  EXPECT_EQ(compressed.distinct_word_count, 4u);
  EXPECT_EQ(compressed.total_chars, 15u);
  TrieStats uncompressed = AnalyzeText("the cat and the dog", false);
  EXPECT_GT(uncompressed.node_count, compressed.node_count);
}

TEST(TrieXmlTest, AlphabetCoversCharsAndTerminal) {
  auto alphabet = TrieAlphabet();
  EXPECT_EQ(alphabet.size(), 26u + 10u + 1u);
  EXPECT_EQ(alphabet.back(), kTerminalLabel);
}

TEST(TrieXmlTest, WordToSteps) {
  EXPECT_EQ(WordToSteps("Joan"),
            (std::vector<std::string>{"j", "o", "a", "n"}));
  EXPECT_EQ(WordToSteps("a-b"), (std::vector<std::string>{"a", "b"}));
}

TEST(TrieXmlTest, TransformReplacesTextWithCharacterElements) {
  auto doc = xml::ParseDocument("<name>Joan</name>");
  ASSERT_TRUE(doc.ok());
  size_t transformed = TransformDocument(&*doc);
  EXPECT_EQ(transformed, 1u);
  // <name><j><o><a><n><_end_/></n></a></o></j></name>
  const xml::Node* node = doc->root();
  ASSERT_EQ(node->children.size(), 1u);
  const xml::Node* j = node->children[0].get();
  EXPECT_EQ(j->name, "j");
  const xml::Node* o = j->children[0].get();
  EXPECT_EQ(o->name, "o");
  const xml::Node* a = o->children[0].get();
  EXPECT_EQ(a->name, "a");
  const xml::Node* n = a->children[0].get();
  EXPECT_EQ(n->name, "n");
  ASSERT_EQ(n->children.size(), 1u);
  EXPECT_EQ(n->children[0]->name, kTerminalLabel);
}

TEST(TrieXmlTest, TransformPreservesElementStructure) {
  auto doc = xml::ParseDocument(
      "<person><name>Joan Johnson</name><age>30</age></person>");
  ASSERT_TRUE(doc.ok());
  size_t transformed = TransformDocument(&*doc);
  EXPECT_EQ(transformed, 2u);
  const xml::Node* root = doc->root();
  EXPECT_EQ(root->children.size(), 2u);
  EXPECT_EQ(root->children[0]->name, "name");
  EXPECT_EQ(root->children[1]->name, "age");
  // No text nodes remain anywhere.
  bool has_text = false;
  std::function<void(const xml::Node*)> walk = [&](const xml::Node* n) {
    for (const auto& c : n->children) {
      if (c->IsText()) has_text = true;
      walk(c.get());
    }
  };
  walk(root);
  EXPECT_FALSE(has_text);
}

TEST(TrieXmlTest, CompressedVsUncompressedNodeCounts) {
  auto doc1 = xml::ParseDocument("<t>aa aa aa</t>");
  auto doc2 = xml::ParseDocument("<t>aa aa aa</t>");
  ASSERT_TRUE(doc1.ok() && doc2.ok());
  TransformDocument(&*doc1, {.compressed = true});
  TransformDocument(&*doc2, {.compressed = false});
  EXPECT_LT(doc1->ElementCount(), doc2->ElementCount());
}

}  // namespace
}  // namespace ssdb::trie
