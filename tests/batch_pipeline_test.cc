// Regression coverage for the batched evaluation pipeline: a query step
// costs a bounded number of server round trips regardless of candidate-set
// size, measured over a real unix-domain socket channel; and the scalar
// matching APIs remain exact wrappers over the batch path.

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "query/advanced_engine.h"
#include "query/simple_engine.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "rpc/socket_channel.h"
#include "test_helpers.h"

namespace ssdb {
namespace {

using testing_helpers::BuildTestDb;
using testing_helpers::SmallAuctionXml;
using testing_helpers::TestDb;

// A flat document whose candidate sets grow with `persons` while the query
// shape (step count) stays fixed.
std::string WideXml(int persons) {
  std::string xml = "<site><people>";
  for (int i = 0; i < persons; ++i) {
    xml += "<person><address><city>X</city></address></person>";
  }
  xml += "</people></site>";
  return xml;
}

// Serves `db` over a unix socket on a background thread and runs `body`
// with a connected RemoteServerFilter.
void WithRemote(TestDb* db,
                const std::function<void(rpc::RemoteServerFilter*)>& body) {
  std::string path = "/tmp/ssdb_batch_test_" + std::to_string(::getpid()) +
                     "_" + std::to_string(reinterpret_cast<uintptr_t>(db)) +
                     ".sock";
  auto listener = rpc::UnixServerSocket::Listen(path);
  ASSERT_TRUE(listener.ok());
  std::thread server_thread([&] {
    auto channel = (*listener)->Accept();
    if (!channel.ok()) return;
    rpc::RpcServer server(db->ring, db->server.get());
    server.Serve(channel->get());
  });
  auto channel = rpc::ConnectUnix(path);
  ASSERT_TRUE(channel.ok());
  rpc::RemoteServerFilter remote(db->ring, std::move(*channel));
  body(&remote);
  ASSERT_TRUE(remote.Shutdown().ok());
  server_thread.join();
  ::unlink(path.c_str());
}

// Round trips consumed by one query, measured at the wire.
uint64_t MeasureTrips(TestDb* db, rpc::RemoteServerFilter* remote,
                      query::QueryEngine* engine, const std::string& text,
                      query::MatchMode mode, size_t* result_size = nullptr,
                      query::QueryStats* stats_out = nullptr) {
  auto parsed = query::ParseQuery(text);
  EXPECT_TRUE(parsed.ok()) << text;
  uint64_t before = remote->round_trips();
  query::QueryStats stats;
  auto result = engine->Execute(*parsed, mode, &stats);
  EXPECT_TRUE(result.ok()) << text << ": " << result.status().ToString();
  if (result_size != nullptr) *result_size = result->size();
  if (stats_out != nullptr) *stats_out = stats;
  (void)db;
  return remote->round_trips() - before;
}

const char* kPrefixQueries[] = {
    "/site",
    "/site/people",
    "/site/people/person",
    "/site/people/person/address",
    "/site/people/person/address/city",
};

TEST(BatchPipelineTest, RoundTripsScaleWithStepsNotCandidates) {
  // The same 5-step containment query over documents with 8x different
  // candidate counts must cost the *identical* number of wire round trips,
  // and that number must be small and linear in the step count.
  std::vector<uint64_t> trips_by_size;
  std::vector<size_t> results_by_size;
  for (int persons : {5, 40}) {
    auto db = BuildTestDb(WideXml(persons));
    WithRemote(db.get(), [&](rpc::RemoteServerFilter* remote) {
      filter::ClientFilter client(db->ring, prg::Prg(db->seed), remote);
      query::SimpleEngine engine(&client, &db->map);
      size_t results = 0;
      query::QueryStats stats;
      uint64_t trips = MeasureTrips(db.get(), remote, &engine,
                                    kPrefixQueries[4],
                                    query::MatchMode::kContainment, &results,
                                    &stats);
      trips_by_size.push_back(trips);
      results_by_size.push_back(results);
      // The engine-visible counter agrees with the wire.
      EXPECT_EQ(stats.eval.round_trips, trips);
      EXPECT_GT(stats.eval.batched_evaluations, 0u);
    });
  }
  ASSERT_EQ(trips_by_size.size(), 2u);
  EXPECT_EQ(trips_by_size[0], trips_by_size[1])
      << "round trips must not depend on candidate-set size";
  EXPECT_EQ(results_by_size[0], 5u);
  EXPECT_EQ(results_by_size[1], 40u);

  // Simple engine, child steps only: Root + one eval batch for the first
  // step + (children batch + eval batch) per later step = 2s round trips
  // for an s-step query.
  constexpr uint64_t kSteps = 5;
  EXPECT_LE(trips_by_size[0], 2 * kSteps);
}

TEST(BatchPipelineTest, RoundTripsGrowLinearlyWithQueryLength) {
  auto db = BuildTestDb(WideXml(16));
  WithRemote(db.get(), [&](rpc::RemoteServerFilter* remote) {
    filter::ClientFilter client(db->ring, prg::Prg(db->seed), remote);
    query::SimpleEngine engine(&client, &db->map);
    uint64_t previous = 0;
    for (size_t i = 0; i < std::size(kPrefixQueries); ++i) {
      uint64_t trips = MeasureTrips(db.get(), remote, &engine,
                                    kPrefixQueries[i],
                                    query::MatchMode::kContainment);
      EXPECT_LE(trips, 2 * (i + 1)) << kPrefixQueries[i];
      if (i > 0) {
        // Each extra step costs a bounded constant number of trips.
        EXPECT_LE(trips, previous + 2) << kPrefixQueries[i];
      }
      previous = trips;
    }
  });
}

TEST(BatchPipelineTest, AdvancedEngineTripsIndependentOfCandidates) {
  std::vector<uint64_t> trips_by_size;
  for (int persons : {5, 40}) {
    auto db = BuildTestDb(WideXml(persons));
    WithRemote(db.get(), [&](rpc::RemoteServerFilter* remote) {
      filter::ClientFilter client(db->ring, prg::Prg(db->seed), remote);
      query::AdvancedEngine engine(&client, &db->map);
      trips_by_size.push_back(
          MeasureTrips(db.get(), remote, &engine, kPrefixQueries[4],
                       query::MatchMode::kContainment));
    });
  }
  ASSERT_EQ(trips_by_size.size(), 2u);
  EXPECT_EQ(trips_by_size[0], trips_by_size[1]);
}

TEST(BatchPipelineTest, EqualityModeTripsIndependentOfCandidates) {
  std::vector<uint64_t> trips_by_size;
  std::vector<size_t> results_by_size;
  for (int persons : {4, 24}) {
    auto db = BuildTestDb(WideXml(persons));
    WithRemote(db.get(), [&](rpc::RemoteServerFilter* remote) {
      filter::ClientFilter client(db->ring, prg::Prg(db->seed), remote);
      query::SimpleEngine engine(&client, &db->map);
      size_t results = 0;
      trips_by_size.push_back(
          MeasureTrips(db.get(), remote, &engine, "/site/people/person",
                       query::MatchMode::kEquality, &results));
      results_by_size.push_back(results);
    });
  }
  ASSERT_EQ(trips_by_size.size(), 2u);
  EXPECT_EQ(trips_by_size[0], trips_by_size[1])
      << "equality batching must be per step, not per candidate";
  EXPECT_EQ(results_by_size[0], 4u);
  EXPECT_EQ(results_by_size[1], 24u);
}

TEST(BatchPipelineTest, ScalarMethodsMatchBatchPath) {
  auto db = BuildTestDb(SmallAuctionXml());
  auto root = db->client->Root();
  ASSERT_TRUE(root.ok());
  auto children = db->client->Children(*root);
  ASSERT_TRUE(children.ok());
  std::vector<filter::NodeMeta> nodes = *children;
  nodes.push_back(*root);

  for (const char* name : {"person", "city", "site", "open_auction"}) {
    gf::Elem value = *db->map.Lookup(name);
    auto batch = db->client->ContainsValueBatch(nodes, value);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->size(), nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      auto scalar = db->client->ContainsValue(nodes[i], value);
      ASSERT_TRUE(scalar.ok());
      EXPECT_EQ(*scalar, (*batch)[i] != 0) << name << " pre=" << nodes[i].pre;
    }

    auto eq_batch = db->client->EqualsValueBatch(nodes, value);
    ASSERT_TRUE(eq_batch.ok());
    for (size_t i = 0; i < nodes.size(); ++i) {
      auto scalar = db->client->EqualsValue(nodes[i], value);
      ASSERT_TRUE(scalar.ok());
      EXPECT_EQ(*scalar, (*eq_batch)[i] != 0) << name;
    }
  }

  // Multi-value containment: batch mask equals per-node ContainsAllValues.
  std::vector<gf::Elem> values = {*db->map.Lookup("person"),
                                  *db->map.Lookup("city")};
  auto all_mask = db->client->ContainsAllValuesBatch(nodes, values);
  ASSERT_TRUE(all_mask.ok());
  for (size_t i = 0; i < nodes.size(); ++i) {
    auto scalar = db->client->ContainsAllValues(nodes[i], values);
    ASSERT_TRUE(scalar.ok());
    EXPECT_EQ(*scalar, (*all_mask)[i] != 0);
  }
}

TEST(BatchPipelineTest, RecoverOwnValueBatchDeduplicatesShares) {
  auto db = BuildTestDb(SmallAuctionXml());
  auto root = db->client->Root();
  ASSERT_TRUE(root.ok());
  auto children = db->client->Children(*root);
  ASSERT_TRUE(children.ok());

  // Overlapping candidates: the root plus its children; the children's
  // shares are needed both as candidates and as the root's child set.
  std::vector<filter::NodeMeta> nodes = *children;
  nodes.push_back(*root);
  db->client->stats().Reset();
  auto values = db->client->RecoverOwnValueBatch(nodes);
  ASSERT_TRUE(values.ok());
  ASSERT_EQ(values->size(), nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    auto scalar = db->client->RecoverOwnValue(nodes[i]);
    ASSERT_TRUE(scalar.ok());
    EXPECT_EQ(*scalar, (*values)[i]);
  }
}

TEST(BatchPipelineTest, EnginesAgreeLocalAndRemoteBothModes) {
  auto db = BuildTestDb(SmallAuctionXml());
  const char* queries[] = {"/site//city", "/site/people/person",
                           "//person/address", "/site/*/person"};
  for (const char* text : queries) {
    auto parsed = query::ParseQuery(text);
    ASSERT_TRUE(parsed.ok());
    for (auto mode :
         {query::MatchMode::kContainment, query::MatchMode::kEquality}) {
      // Local reference.
      query::SimpleEngine local_simple(db->client.get(), &db->map);
      query::AdvancedEngine local_advanced(db->client.get(), &db->map);
      auto local_s = local_simple.Execute(*parsed, mode, nullptr);
      auto local_a = local_advanced.Execute(*parsed, mode, nullptr);
      ASSERT_TRUE(local_s.ok() && local_a.ok()) << text;
      EXPECT_EQ(*local_s, *local_a) << text;

      WithRemote(db.get(), [&](rpc::RemoteServerFilter* remote) {
        filter::ClientFilter client(db->ring, prg::Prg(db->seed), remote);
        query::SimpleEngine remote_simple(&client, &db->map);
        query::AdvancedEngine remote_advanced(&client, &db->map);
        auto remote_s = remote_simple.Execute(*parsed, mode, nullptr);
        auto remote_a = remote_advanced.Execute(*parsed, mode, nullptr);
        ASSERT_TRUE(remote_s.ok() && remote_a.ok()) << text;
        EXPECT_EQ(*remote_s, *local_s) << text;
        EXPECT_EQ(*remote_a, *local_a) << text;
      });
    }
  }
}

}  // namespace
}  // namespace ssdb
