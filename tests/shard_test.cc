// Shard-router battery (DESIGN.md §10): catalog codecs (JSON + binary),
// routing over a multi-document corpus spread across server groups with
// different slice counts, corpus-wide aggregate merging against
// per-document ground truth, straggler round-trip accounting, the catalog
// RPC tier, local-disk corpus opening, per-document seeds, and verified
// aggregation attributing a tampering server through the router.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "fault_injection.h"
#include "query/xpath.h"
#include "rpc/concurrent_server.h"
#include "rpc/protocol.h"
#include "rpc/socket_channel.h"
#include "shard/catalog.h"
#include "shard/catalog_client.h"
#include "shard/router.h"
#include "util/file_util.h"
#include "xmark/generator.h"

#include <unistd.h>

namespace ssdb {
namespace {

using shard::Router;
using shard::ShardCatalog;
using shard::ShardEntry;

ShardEntry MakeEntry(const std::string& id, uint32_t group, size_t slices) {
  ShardEntry entry;
  entry.doc_id = id;
  entry.group = group;
  for (size_t i = 0; i < slices; ++i) {
    entry.slices.push_back("mem://" + id + "/" + std::to_string(i));
  }
  return entry;
}

// --- catalog codecs ---------------------------------------------------------

TEST(ShardCatalogTest, JsonRoundTrip) {
  ShardCatalog catalog;
  ASSERT_TRUE(catalog.Add(MakeEntry("alpha", 0, 1)).ok());
  ASSERT_TRUE(catalog.Add(MakeEntry("beta", 1, 2)).ok());
  ASSERT_TRUE(catalog.Add(MakeEntry("gamma", 1, 2)).ok());

  auto parsed = ShardCatalog::FromJson(catalog.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->entries(), catalog.entries());
  EXPECT_EQ(parsed->Groups(), (std::vector<uint32_t>{0, 1}));

  TempDir dir("shard_catalog");
  std::string path = dir.FilePath("catalog.json");
  ASSERT_TRUE(catalog.Save(path).ok());
  auto loaded = ShardCatalog::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->entries(), catalog.entries());
}

TEST(ShardCatalogTest, JsonRejectsOtherVersionsAndGarbage) {
  auto wrong = ShardCatalog::FromJson(
      R"({"version":2,"documents":[]})");
  EXPECT_EQ(wrong.status().code(), StatusCode::kUnimplemented);

  for (const char* bad :
       {"", "{", "[]", R"({"documents":[]})",
        R"({"version":1,"documents":[{"group":0,"slices":["s"]}]})",
        R"({"version":1,"documents":[]} trailing)"}) {
    EXPECT_FALSE(ShardCatalog::FromJson(bad).ok()) << bad;
  }
}

TEST(ShardCatalogTest, AddValidates) {
  ShardCatalog catalog;
  ASSERT_TRUE(catalog.Add(MakeEntry("alpha", 0, 1)).ok());
  EXPECT_EQ(catalog.Add(MakeEntry("alpha", 1, 1)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(catalog.Add(MakeEntry("", 0, 1)).ok());
  EXPECT_FALSE(catalog.Add(MakeEntry("noslices", 0, 0)).ok());
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.Find("alpha")->group, 0u);
  EXPECT_EQ(catalog.Find("beta"), nullptr);
}

TEST(ShardCatalogTest, BinaryRoundTripAndTruncation) {
  ShardCatalog catalog;
  ASSERT_TRUE(catalog.Add(MakeEntry("alpha", 0, 1)).ok());
  ASSERT_TRUE(catalog.Add(MakeEntry("beta", 7, 2)).ok());

  std::string wire = shard::EncodeCatalog(catalog);
  auto decoded = shard::DecodeCatalog(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->entries(), catalog.entries());

  // Every proper prefix must fail cleanly, never crash or misread.
  for (size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(shard::DecodeCatalog(wire.substr(0, len)).ok()) << len;
  }

  std::string entry_wire = shard::EncodeEntry(catalog.entries()[1]);
  auto entry = shard::DecodeEntry(entry_wire);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(*entry, catalog.entries()[1]);
  for (size_t len = 0; len < entry_wire.size(); ++len) {
    EXPECT_FALSE(shard::DecodeEntry(entry_wire.substr(0, len)).ok()) << len;
  }
}

// --- aggregate merge --------------------------------------------------------

TEST(ShardMergeTest, GroupByUnionsByName) {
  agg::Result a;
  a.group_by = true;
  a.verified = true;
  a.proof_words = 3;
  a.group_names = {"person", "item"};
  a.values = {2, 5};
  agg::Result b;
  b.group_by = true;
  b.verified = true;
  b.proof_words = 4;
  b.group_names = {"item", "bidder"};
  b.values = {1, 9};

  agg::Result merged;
  shard::MergeAggregate(&merged, a, /*first=*/true);
  shard::MergeAggregate(&merged, b, /*first=*/false);
  EXPECT_EQ(merged.group_names,
            (std::vector<std::string>{"person", "item", "bidder"}));
  EXPECT_EQ(merged.values, (std::vector<uint64_t>{2, 6, 9}));
  EXPECT_EQ(merged.proof_words, 7u);
  EXPECT_TRUE(merged.verified);

  agg::Result tainted;
  tainted.verified = false;
  shard::MergeAggregate(&merged, tainted, /*first=*/false);
  EXPECT_FALSE(merged.verified);
}

// --- corpus fixture ---------------------------------------------------------

// Three XMark documents of different sizes across three server groups:
// alpha is a classic single-server doc, beta and gamma are 2-slice splits.
// Every document has its own seed (the recommended deployment).
struct CorpusFixture {
  gf::Field field;
  gf::Ring ring;
  mapping::TagMap map;
  std::vector<std::string> ids{"alpha", "beta", "gamma"};
  std::vector<uint32_t> groups{0, 1, 2};
  std::vector<uint32_t> slices{1, 2, 2};
  std::vector<prg::Seed> seeds;
  std::vector<std::unique_ptr<core::EncryptedXmlDatabase>> dbs;
  ShardCatalog catalog;
  std::map<std::string, std::vector<filter::ServerFilter*>> backends;
  std::map<std::string, prg::Seed> seed_map;

  CorpusFixture()
      : field(*gf::Field::Make(83)),
        ring(field),
        map(*core::EncryptedXmlDatabase::TagMapForDtd(xmark::AuctionDtd(),
                                                      field, false)) {
    for (size_t i = 0; i < ids.size(); ++i) {
      xmark::GeneratorOptions gen;
      gen.target_bytes = (8u + 8u * i) << 10;  // different candidate counts
      gen.seed = 11 * (i + 1);
      seeds.push_back(prg::Seed::FromUint64(1000 + i));

      core::DatabaseOptions options;
      options.backend = core::Backend::kMemory;
      options.servers = slices[i];
      options.encode.verify_aggregate = true;  // §9 track for blame tests
      auto db = core::EncryptedXmlDatabase::Encode(
          xmark::GenerateAuctionDocument(gen).xml, map, seeds[i], options);
      SSDB_CHECK(db.ok()) << db.status().ToString();
      dbs.push_back(std::move(*db));

      SSDB_CHECK(catalog.Add(MakeEntry(ids[i], groups[i], slices[i])).ok());
      std::vector<filter::ServerFilter*> doc_backends;
      for (uint32_t s = 0; s < slices[i]; ++s) {
        doc_backends.push_back(dbs[i]->slice_filter(s));
      }
      backends.emplace(ids[i], doc_backends);
      seed_map.emplace(ids[i], seeds[i]);
    }
  }

  StatusOr<std::unique_ptr<Router>> OpenRouter(bool verify = false) {
    core::CorpusOptions options;
    options.verify_aggregate = verify;
    return Router::FromBackends(catalog, &map, seeds[0], seed_map, options,
                                backends);
  }

  // Per-document ground truth through the document's own client stack.
  core::QueryResult Truth(size_t i, const std::string& text) {
    auto result = dbs[i]->Query(text, core::EngineKind::kAdvanced,
                                query::MatchMode::kEquality);
    SSDB_CHECK(result.ok()) << result.status().ToString();
    return std::move(*result);
  }
};

query::Query Parse(const std::string& text) {
  auto parsed = query::ParseQuery(text);
  SSDB_CHECK(parsed.ok()) << parsed.status().ToString();
  return *parsed;
}

TEST(ShardRouterTest, CorpusAggregatesMatchPerDocumentGroundTruth) {
  CorpusFixture fx;
  auto router = fx.OpenRouter();
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  for (const char* text :
       {"count(/site//person)", "count(/site//item)", "sum(/site//bidder)",
        "exists(/site/people)", "count(/site/*)"}) {
    SCOPED_TRACE(text);
    auto corpus = (*router)->QueryCorpus(Parse(text),
                                         query::MatchMode::kEquality);
    ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
    EXPECT_TRUE(corpus->is_aggregate);
    EXPECT_EQ(corpus->documents, 3u);
    EXPECT_EQ(corpus->groups, 3u);

    uint64_t expected_total = 0;
    std::map<std::string, uint64_t> expected_groups;
    for (size_t i = 0; i < fx.ids.size(); ++i) {
      core::QueryResult truth = fx.Truth(i, text);
      expected_total += truth.aggregate.Total();
      for (size_t g = 0; g < truth.aggregate.group_names.size(); ++g) {
        expected_groups[truth.aggregate.group_names[g]] +=
            truth.aggregate.values[g];
      }
    }
    EXPECT_EQ(corpus->aggregate.Total(), expected_total);
    std::map<std::string, uint64_t> merged_groups;
    for (size_t g = 0; g < corpus->aggregate.group_names.size(); ++g) {
      merged_groups[corpus->aggregate.group_names[g]] +=
          corpus->aggregate.values[g];
    }
    EXPECT_EQ(merged_groups, expected_groups);
  }
}

TEST(ShardRouterTest, CorpusRoundTripsAreStragglerNotSum) {
  CorpusFixture fx;
  auto router = fx.OpenRouter();
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  // Per-document trip counts for the same query...
  uint64_t max_doc_trips = 0;
  for (const std::string& id : fx.ids) {
    auto doc = (*router)->QueryDoc(id, Parse("count(/site//person)"),
                                   query::MatchMode::kEquality);
    ASSERT_TRUE(doc.ok());
    max_doc_trips = std::max(max_doc_trips, doc->stats.eval.round_trips);
  }
  // ...must equal the corpus cost: concurrent fan-out is one straggler of
  // latency, not a sum across documents.
  auto corpus = (*router)->QueryCorpus(Parse("count(/site//person)"),
                                       query::MatchMode::kEquality);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->stats.eval.round_trips, max_doc_trips);

  // Round trips depend on the query's shape, not on how many nodes match:
  // person and item populations differ, the step structure does not.
  auto other = (*router)->QueryCorpus(Parse("count(/site//item)"),
                                      query::MatchMode::kEquality);
  ASSERT_TRUE(other.ok());
  EXPECT_NE(corpus->aggregate.Total(), other->aggregate.Total());
  EXPECT_EQ(corpus->stats.eval.round_trips, other->stats.eval.round_trips);
}

TEST(ShardRouterTest, FetchQueriesConcatenatePerDocument) {
  CorpusFixture fx;
  auto router = fx.OpenRouter();
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  auto corpus = (*router)->QueryCorpus(Parse("/site/people/person"),
                                       query::MatchMode::kEquality);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  EXPECT_FALSE(corpus->is_aggregate);
  ASSERT_EQ(corpus->nodes.size(), 3u);
  for (size_t i = 0; i < fx.ids.size(); ++i) {
    EXPECT_EQ(corpus->nodes[i].doc_id, fx.ids[i]);
    core::QueryResult truth = fx.Truth(i, "/site/people/person");
    ASSERT_EQ(corpus->nodes[i].nodes.size(), truth.nodes.size());
    for (size_t n = 0; n < truth.nodes.size(); ++n) {
      EXPECT_EQ(corpus->nodes[i].nodes[n].pre, truth.nodes[n].pre);
    }
  }
}

TEST(ShardRouterTest, QueryDocRoutesAndRejectsUnknownIds) {
  CorpusFixture fx;
  auto router = fx.OpenRouter();
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  auto doc = (*router)->QueryDoc("beta", Parse("count(/site//person)"),
                                 query::MatchMode::kEquality);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->doc_id, "beta");
  EXPECT_EQ(doc->group, 1u);
  EXPECT_EQ(doc->aggregate.Total(),
            fx.Truth(1, "count(/site//person)").aggregate.Total());

  auto missing = (*router)->QueryDoc("delta", Parse("count(/site//person)"),
                                     query::MatchMode::kEquality);
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_NE(missing.status().message().find("delta"), std::string::npos);
}

TEST(ShardRouterTest, WrongSeedFailsTheOpenProbe) {
  CorpusFixture fx;
  // Drop gamma's seed from the map so it falls back to the (wrong)
  // default: the per-document share-sum probe must catch this at open.
  fx.seed_map.erase("gamma");
  core::CorpusOptions options;
  auto router = Router::FromBackends(fx.catalog, &fx.map, fx.seeds[0],
                                     fx.seed_map, options, fx.backends);
  ASSERT_FALSE(router.ok());
  EXPECT_NE(router.status().message().find("doc gamma (group 2)"),
            std::string::npos)
      << router.status().ToString();
  EXPECT_NE(router.status().message().find("probe"), std::string::npos);
}

TEST(ShardRouterTest, MissingBackendsAndEmptyCatalogFailLoudly) {
  CorpusFixture fx;
  fx.backends.erase("beta");
  core::CorpusOptions options;
  auto router = Router::FromBackends(fx.catalog, &fx.map, fx.seeds[0],
                                     fx.seed_map, options, fx.backends);
  EXPECT_EQ(router.status().code(), StatusCode::kInvalidArgument);

  ShardCatalog empty;
  auto none = Router::FromBackends(
      empty, &fx.map, fx.seeds[0], {}, options, {});
  ASSERT_TRUE(none.ok());
  auto corpus = (*none)->QueryCorpus(Parse("count(/site//person)"),
                                     query::MatchMode::kEquality);
  EXPECT_EQ(corpus.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ShardRouterTest, TamperingServerIsAttributedThroughTheRouter) {
  CorpusFixture fx;
  // Slice 1 of beta's 2-server group lies by +1 on aggregate words.
  testing_helpers::FaultConfig config;
  config.fault = testing_helpers::Fault::kAddOne;
  config.on_aggregate = true;
  testing_helpers::TamperingServerFilter tamper(
      fx.ring, fx.dbs[1]->slice_filter(1), config);
  fx.backends["beta"][1] = &tamper;

  auto router = fx.OpenRouter(/*verify=*/true);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  auto corpus = (*router)->QueryCorpus(Parse("count(/site//person)"),
                                       query::MatchMode::kEquality);
  ASSERT_FALSE(corpus.ok());
  EXPECT_EQ(corpus.status().code(), StatusCode::kCorruption);
  // Blame crosses the router intact: document, group, and server named.
  EXPECT_NE(corpus.status().message().find("doc beta (group 1)"),
            std::string::npos)
      << corpus.status().ToString();
  EXPECT_NE(corpus.status().message().find("server 1"), std::string::npos)
      << corpus.status().ToString();
  EXPECT_GT(tamper.faults_injected(), 0u);

  // The honest groups still answer: remove the tamper and the same router
  // config verifies end to end.
  fx.backends["beta"][1] = fx.dbs[1]->slice_filter(1);
  auto honest = fx.OpenRouter(/*verify=*/true);
  ASSERT_TRUE(honest.ok());
  auto verified = (*honest)->QueryCorpus(Parse("count(/site//person)"),
                                         query::MatchMode::kEquality);
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  EXPECT_TRUE(verified->aggregate.verified);
  EXPECT_GT(verified->aggregate.proof_words, 0u);
}

TEST(ShardRouterTest, OpensLocalSliceFilesFromCatalog) {
  CorpusFixture fx;
  TempDir dir("shard_local");

  // Encode one extra document to disk as a 2-slice split and route to it
  // through a catalog whose endpoints are the slice files.
  xmark::GeneratorOptions gen;
  gen.target_bytes = 8 << 10;
  gen.seed = 99;
  std::string xml = xmark::GenerateAuctionDocument(gen).xml;
  prg::Seed seed = prg::Seed::FromUint64(4242);
  std::string base = dir.FilePath("delta.ssdb");
  core::DatabaseOptions options;
  options.backend = core::Backend::kDisk;
  options.disk_path = base;
  options.servers = 2;
  auto db = core::EncryptedXmlDatabase::Encode(xml, fx.map, seed, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  ShardCatalog catalog;
  ShardEntry entry;
  entry.doc_id = "delta";
  entry.group = 0;
  entry.slices = {core::ShareSlicePath(base, 0, 2),
                  core::ShareSlicePath(base, 1, 2)};
  ASSERT_TRUE(catalog.Add(entry).ok());

  core::CorpusOptions copts;
  copts.local = true;
  auto router = Router::Open(catalog, &fx.map, seed, {}, copts);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  auto corpus = (*router)->QueryCorpus(Parse("count(/site//person)"),
                                       query::MatchMode::kEquality);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  EXPECT_EQ(corpus->aggregate.Total(),
            (*db)->Query("count(/site//person)", core::EngineKind::kAdvanced,
                         query::MatchMode::kEquality)
                ->aggregate.Total());
}

// --- the catalog RPC tier ---------------------------------------------------

TEST(ShardCatalogServerTest, ServesCatalogAndRefusesFilterOps) {
  ShardCatalog catalog;
  ASSERT_TRUE(catalog.Add(MakeEntry("alpha", 0, 1)).ok());
  ASSERT_TRUE(catalog.Add(MakeEntry("beta", 1, 2)).ok());
  std::map<std::string, std::string> entries;
  for (const ShardEntry& entry : catalog.entries()) {
    entries.emplace(entry.doc_id, shard::EncodeEntry(entry));
  }

  std::string path = "/tmp/ssdb_shard_router_" +
                     std::to_string(::getpid()) + ".sock";
  auto listener = rpc::UnixServerSocket::Listen(path);
  ASSERT_TRUE(listener.ok());
  gf::Field field = *gf::Field::Make(83);
  rpc::ConcurrentServerOptions options;
  options.threads = 2;
  rpc::ConcurrentServer server(gf::Ring(field), /*filter=*/nullptr,
                               std::move(*listener), options);
  server.SetCatalog(shard::EncodeCatalog(catalog), std::move(entries));
  ASSERT_TRUE(server.Start().ok());

  auto fetched = shard::FetchCatalogUnix(path);
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  EXPECT_EQ(fetched->entries(), catalog.entries());

  auto entry = shard::ResolveDocUnix(path, "beta");
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
  EXPECT_EQ(*entry, catalog.entries()[1]);

  auto missing = shard::ResolveDocUnix(path, "delta");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // A share/structure op against the catalog tier must refuse, not crash:
  // the router holds no slice.
  auto channel = rpc::ConnectUnix(path);
  ASSERT_TRUE(channel.ok());
  rpc::Request root;
  root.op = rpc::Op::kRoot;
  ASSERT_TRUE((*channel)->Send(rpc::EncodeRequest(root)).ok());
  auto raw = (*channel)->Receive();
  ASSERT_TRUE(raw.ok());
  auto payload = rpc::DecodeResponse(*raw);
  EXPECT_EQ(payload.status().code(), StatusCode::kFailedPrecondition);

  server.Shutdown();
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace ssdb
