#include <gtest/gtest.h>

#include "gf/dft.h"
#include "gf/poly.h"
#include "gf/ring.h"
#include "util/random.h"

namespace ssdb::gf {
namespace {

class RingTest : public ::testing::Test {
 protected:
  RingTest() : field_(*Field::Make(83)), ring_(field_) {}

  RingElem RandomElem(Random* rng) {
    RingElem f(ring_.n());
    for (auto& c : f) c = static_cast<Elem>(rng->Uniform(field_.q()));
    return f;
  }

  Field field_;
  Ring ring_;
};

TEST_F(RingTest, ReducePreservesEvaluationAtNonzeroPoints) {
  // The central correctness fact of the paper's encoding (DESIGN.md §2).
  Random rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    Poly f;
    int degree = 150 + static_cast<int>(rng.Uniform(100));  // > n = 82
    for (int i = 0; i <= degree; ++i) {
      f.coeffs.push_back(static_cast<Elem>(rng.Uniform(field_.q())));
    }
    RingElem reduced = ring_.Reduce(f);
    for (Elem t = 1; t < field_.q(); t += 7) {
      EXPECT_EQ(ring_.Eval(reduced, t), PolyEval(field_, f, t));
    }
  }
}

TEST_F(RingTest, MulMatchesPolynomialMulReduced) {
  Random rng(29);
  for (int trial = 0; trial < 10; ++trial) {
    RingElem a = RandomElem(&rng);
    RingElem b = RandomElem(&rng);
    RingElem via_ring = ring_.Mul(a, b);
    Poly pa{std::vector<Elem>(a.begin(), a.end())};
    Poly pb{std::vector<Elem>(b.begin(), b.end())};
    RingElem via_poly = ring_.Reduce(PolyMul(field_, pa, pb));
    EXPECT_EQ(via_ring, via_poly);
  }
}

TEST_F(RingTest, MulXMinusMatchesGeneralMul) {
  Random rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    RingElem f = RandomElem(&rng);
    Elem t = static_cast<Elem>(rng.Uniform(field_.q()));
    EXPECT_EQ(ring_.MulXMinus(f, t), ring_.Mul(f, ring_.XMinus(t)));
  }
}

TEST_F(RingTest, AddSubNegConsistent) {
  Random rng(37);
  RingElem a = RandomElem(&rng);
  RingElem b = RandomElem(&rng);
  EXPECT_EQ(ring_.Sub(ring_.Add(a, b), b), a);
  EXPECT_EQ(ring_.Add(a, ring_.Neg(a)), ring_.Zero());
  RingElem acc = a;
  ring_.AddInto(&acc, b);
  EXPECT_EQ(acc, ring_.Add(a, b));
}

TEST_F(RingTest, SerializeRoundTrip) {
  Random rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    RingElem f = RandomElem(&rng);
    std::string bytes = ring_.Serialize(f);
    EXPECT_EQ(bytes.size(), ring_.serialized_bytes());
    auto back = ring_.Deserialize(bytes);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, f);
  }
}

TEST_F(RingTest, DeserializeRejectsOutOfRangeCoefficients) {
  // All-ones bits decode to 127 per 7-bit coefficient > 82: invalid.
  std::string bad(ring_.serialized_bytes(), '\xff');
  EXPECT_FALSE(ring_.Deserialize(bad).ok());
}

TEST_F(RingTest, PaperExampleFigureOne) {
  // Fig. 1: p=5, map {a:2, b:1, c:3}, tree c(b(a,b), c(a)).
  // f(root) = (x-3) * [(x-1)(x-2)(x-1)] * [(x-3)(x-2)]
  //         = (x-1)^2 (x-2)^2 (x-3)^2.
  Field f5 = *Field::Make(5);
  Ring ring5(f5);
  Poly unreduced = PolyXMinus(f5, 1);
  unreduced = PolyMul(f5, unreduced, PolyXMinus(f5, 1));
  unreduced = PolyMul(f5, unreduced, PolyXMinus(f5, 2));
  unreduced = PolyMul(f5, unreduced, PolyXMinus(f5, 2));
  unreduced = PolyMul(f5, unreduced, PolyXMinus(f5, 3));
  unreduced = PolyMul(f5, unreduced, PolyXMinus(f5, 3));
  RingElem root = ring5.Reduce(unreduced);
  // The root must contain a, b and c (evaluations vanish at 1, 2, 3) ...
  EXPECT_EQ(ring5.Eval(root, 1), 0u);
  EXPECT_EQ(ring5.Eval(root, 2), 0u);
  EXPECT_EQ(ring5.Eval(root, 3), 0u);
  // ... and at the unused point 4 equal the product of (4 - t_i):
  // (4-1)^2 (4-2)^2 (4-3)^2 = 9*4*1 = 36 = 1 (mod 5).
  EXPECT_EQ(ring5.Eval(root, 4), 1u);
}

class DftTest : public RingTest {};

TEST_F(DftTest, ForwardInverseRoundTrip) {
  Evaluator evaluator(ring_);
  Random rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    RingElem f = RandomElem(&rng);
    EvalVector evals = evaluator.Forward(f);
    EXPECT_EQ(evaluator.Inverse(evals), f);
  }
}

TEST_F(DftTest, ForwardMatchesHornerAtEachPoint) {
  Evaluator evaluator(ring_);
  Random rng(47);
  RingElem f = RandomElem(&rng);
  EvalVector evals = evaluator.Forward(f);
  for (uint32_t i = 0; i < ring_.n(); ++i) {
    EXPECT_EQ(evals[i], ring_.Eval(f, evaluator.point(i)));
  }
}

TEST_F(DftTest, PointwiseMulIsRingMul) {
  // The ring isomorphism: DFT(a*b) = DFT(a) .* DFT(b).
  Evaluator evaluator(ring_);
  Random rng(53);
  RingElem a = RandomElem(&rng);
  RingElem b = RandomElem(&rng);
  EvalVector ea = evaluator.Forward(a);
  EvalVector eb = evaluator.Forward(b);
  evaluator.PointwiseMulInto(&ea, eb);
  EXPECT_EQ(evaluator.Inverse(ea), ring_.Mul(a, b));
}

TEST_F(DftTest, XMinusEvalsMatchMonomial) {
  Evaluator evaluator(ring_);
  for (Elem t : {0u, 1u, 42u, 82u}) {
    EvalVector evals = evaluator.XMinusEvals(t);
    RingElem monomial = ring_.XMinus(t);
    for (uint32_t i = 0; i < ring_.n(); ++i) {
      EXPECT_EQ(evals[i], ring_.Eval(monomial, evaluator.point(i)));
    }
  }
}

TEST_F(DftTest, WorksOnSmallField) {
  Field f5 = *Field::Make(5);
  Ring ring5(f5);
  Evaluator evaluator(ring5);
  RingElem f = {3, 2, 3, 2};  // 2x^3+3x^2+2x+3
  EXPECT_EQ(evaluator.Inverse(evaluator.Forward(f)), f);
}

}  // namespace
}  // namespace ssdb::gf
