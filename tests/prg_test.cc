#include <gtest/gtest.h>

#include "prg/chacha.h"
#include "prg/prg.h"
#include "prg/seed.h"
#include "util/file_util.h"

namespace ssdb::prg {
namespace {

TEST(ChaChaTest, DeterministicAndCounterSensitive) {
  std::array<uint8_t, kChaChaKeyBytes> key{};
  for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<uint8_t>(i);
  std::array<uint8_t, kChaChaBlockBytes> b1, b2, b3, b4;
  ChaCha20Block(key, 0, 0, &b1);
  ChaCha20Block(key, 0, 0, &b2);
  ChaCha20Block(key, 1, 0, &b3);
  ChaCha20Block(key, 0, 1, &b4);
  EXPECT_EQ(b1, b2);
  EXPECT_NE(b1, b3);  // counter changes the block
  EXPECT_NE(b1, b4);  // nonce changes the block
  EXPECT_NE(b3, b4);
}

TEST(ChaChaTest, KeySensitive) {
  std::array<uint8_t, kChaChaKeyBytes> k1{}, k2{};
  k2[0] = 1;
  std::array<uint8_t, kChaChaBlockBytes> b1, b2;
  ChaCha20Block(k1, 0, 0, &b1);
  ChaCha20Block(k2, 0, 0, &b2);
  EXPECT_NE(b1, b2);
}

TEST(SeedTest, HexRoundTrip) {
  Seed seed = Seed::FromUint64(1234);
  auto back = Seed::FromHex(seed.ToHex());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(*back == seed);
}

TEST(SeedTest, FileRoundTrip) {
  ssdb::TempDir dir("seed_test");
  Seed seed = Seed::FromUint64(777);
  std::string path = dir.FilePath("seed.key");
  ASSERT_TRUE(seed.SaveToFile(path).ok());
  auto loaded = Seed::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(*loaded == seed);
}

TEST(SeedTest, RejectsWrongLength) {
  EXPECT_FALSE(Seed::FromHex("abcd").ok());
  EXPECT_FALSE(Seed::FromHex("zz").ok());
}

TEST(SeedTest, NearbyIntegersGiveUnrelatedSeeds) {
  EXPECT_FALSE(Seed::FromUint64(1) == Seed::FromUint64(2));
}

TEST(PrgTest, StreamsAreDeterministicPerPosition) {
  Prg prg(Seed::FromUint64(42));
  auto s1 = prg.StreamForNode(10);
  auto s2 = prg.StreamForNode(10);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(s1.NextByte(), s2.NextByte());
  }
}

TEST(PrgTest, DifferentPositionsAreIndependent) {
  Prg prg(Seed::FromUint64(42));
  auto s1 = prg.StreamForNode(10);
  auto s2 = prg.StreamForNode(11);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (s1.NextByte() != s2.NextByte()) ++differing;
  }
  EXPECT_GT(differing, 32);  // overwhelming with independent streams
}

TEST(PrgTest, ElementsAreInRangeAndRoughlyUniform) {
  auto field = gf::Field::Make(83);
  ASSERT_TRUE(field.ok());
  Prg prg(Seed::FromUint64(7));
  auto stream = prg.StreamForNode(1);
  std::vector<int> histogram(field->q(), 0);
  const int draws = 83000;
  for (int i = 0; i < draws; ++i) {
    gf::Elem e = stream.NextElem(*field);
    ASSERT_LT(e, field->q());
    ++histogram[e];
  }
  // Every value should appear, none wildly over-represented (chi-square-ish
  // sanity bound: expected 1000 per bucket).
  for (uint32_t v = 0; v < field->q(); ++v) {
    EXPECT_GT(histogram[v], 700) << "value " << v;
    EXPECT_LT(histogram[v], 1300) << "value " << v;
  }
}

TEST(PrgTest, ClientShareMatchesStream) {
  auto field = gf::Field::Make(29);
  ASSERT_TRUE(field.ok());
  gf::Ring ring(*field);
  Prg prg(Seed::FromUint64(123));
  gf::RingElem share = prg.ClientShare(ring, 5);
  EXPECT_EQ(share.size(), ring.n());
  auto stream = prg.StreamForNode(5);
  gf::RingElem expected = stream.NextRingElem(ring);
  EXPECT_EQ(share, expected);
}

TEST(PrgTest, DifferentSeedsDiverge) {
  auto field = gf::Field::Make(83);
  ASSERT_TRUE(field.ok());
  gf::Ring ring(*field);
  Prg a((Seed::FromUint64(1)));
  Prg b((Seed::FromUint64(2)));
  EXPECT_NE(a.ClientShare(ring, 1), b.ClientShare(ring, 1));
}

}  // namespace
}  // namespace ssdb::prg
