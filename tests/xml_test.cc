#include <gtest/gtest.h>

#include "xml/dom.h"
#include "xml/dtd.h"
#include "xml/escape.h"
#include "xml/sax.h"
#include "xml/writer.h"
#include "xmark/generator.h"

namespace ssdb::xml {
namespace {

// Records SAX events as a flat trace for assertions.
class TraceHandler : public SaxHandler {
 public:
  Status StartElement(std::string_view name,
                      const AttributeList& attributes) override {
    trace_ += "<" + std::string(name);
    for (const auto& [k, v] : attributes) trace_ += " " + k + "=" + v;
    trace_ += ">";
    return Status::OK();
  }
  Status EndElement(std::string_view name) override {
    trace_ += "</" + std::string(name) + ">";
    return Status::OK();
  }
  Status Characters(std::string_view text) override {
    trace_ += "[" + std::string(text) + "]";
    return Status::OK();
  }
  const std::string& trace() const { return trace_; }

 private:
  std::string trace_;
};

TEST(EscapeTest, RoundTrip) {
  std::string text = "a<b>&c\"d'e";
  auto back = UnescapeEntities(EscapeText(text));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, text);
  auto attr_back = UnescapeEntities(EscapeAttribute(text));
  ASSERT_TRUE(attr_back.ok());
  EXPECT_EQ(*attr_back, text);
}

TEST(EscapeTest, NumericReferences) {
  auto decoded = UnescapeEntities("&#65;&#x42;");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, "AB");
  EXPECT_FALSE(UnescapeEntities("&bogus;").ok());
  EXPECT_FALSE(UnescapeEntities("&#0;").ok());
  EXPECT_FALSE(UnescapeEntities("&unterminated").ok());
}

TEST(SaxTest, BasicEvents) {
  TraceHandler handler;
  SaxParser parser;
  ASSERT_TRUE(parser
                  .Parse("<a x=\"1\"><b>hi</b><c/></a>", &handler)
                  .ok());
  EXPECT_EQ(handler.trace(), "<a x=1><b>[hi]</b><c></c></a>");
}

TEST(SaxTest, SkipsCommentsPIsAndDoctype) {
  TraceHandler handler;
  SaxParser parser;
  Status s = parser.Parse(
      "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a EMPTY>]>"
      "<!-- note --><a><!-- inner --><b/></a>",
      &handler);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(handler.trace(), "<a><b></b></a>");
}

TEST(SaxTest, CdataIsRawText) {
  TraceHandler handler;
  SaxParser parser;
  ASSERT_TRUE(parser.Parse("<a><![CDATA[x < y & z]]></a>", &handler).ok());
  EXPECT_EQ(handler.trace(), "<a>[x < y & z]</a>");
}

TEST(SaxTest, EntityDecodingInTextAndAttributes) {
  TraceHandler handler;
  SaxParser parser;
  ASSERT_TRUE(
      parser.Parse("<a t=\"&lt;v&gt;\">&amp;&apos;</a>", &handler).ok());
  EXPECT_EQ(handler.trace(), "<a t=<v>>[&']</a>");
}

TEST(SaxTest, RejectsMalformedDocuments) {
  SaxParser parser;
  TraceHandler h1, h2, h3, h4, h5;
  EXPECT_FALSE(parser.Parse("<a><b></a></b>", &h1).ok());  // mismatch
  EXPECT_FALSE(parser.Parse("<a>", &h2).ok());             // unclosed
  EXPECT_FALSE(parser.Parse("<a/><b/>", &h3).ok());        // two roots
  EXPECT_FALSE(parser.Parse("just text", &h4).ok());       // no root
  EXPECT_FALSE(parser.Parse("<a attr=oops/>", &h5).ok());  // unquoted attr
}

TEST(SaxTest, ErrorsCarryLineNumbers) {
  SaxParser parser;
  TraceHandler handler;
  Status s = parser.Parse("<a>\n\n<b></c>\n</a>", &handler);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line 3"), std::string::npos) << s.ToString();
}

TEST(DomTest, BuildsTreeWithParents) {
  auto doc = ParseDocument("<a><b>text</b><c><d/></c></a>");
  ASSERT_TRUE(doc.ok());
  const Node* root = doc->root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "a");
  ASSERT_EQ(root->children.size(), 2u);
  EXPECT_EQ(root->children[0]->name, "b");
  EXPECT_EQ(root->children[0]->DirectText(), "text");
  EXPECT_EQ(root->children[1]->children[0]->name, "d");
  EXPECT_EQ(root->children[1]->parent, root);
  EXPECT_EQ(doc->ElementCount(), 4u);
  EXPECT_EQ(doc->Depth(), 3u);
}

TEST(DomTest, DropsWhitespaceOnlyText) {
  auto doc = ParseDocument("<a>\n  <b/>\n</a>");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->root()->children.size(), 1u);
  EXPECT_TRUE(doc->root()->children[0]->IsElement());
}

TEST(DomTest, PrePostAnnotation) {
  // <a><b><c/></b><d/></a>: pre a=1 b=2 c=3 d=4; post c=1 b=2 d=3 a=4.
  auto doc = ParseDocument("<a><b><c/></b><d/></a>");
  ASSERT_TRUE(doc.ok());
  AnnotatePrePost(&*doc);
  const Node* a = doc->root();
  const Node* b = a->children[0].get();
  const Node* c = b->children[0].get();
  const Node* d = a->children[1].get();
  EXPECT_EQ(a->pre, 1u);
  EXPECT_EQ(b->pre, 2u);
  EXPECT_EQ(c->pre, 3u);
  EXPECT_EQ(d->pre, 4u);
  EXPECT_EQ(c->post, 1u);
  EXPECT_EQ(b->post, 2u);
  EXPECT_EQ(d->post, 3u);
  EXPECT_EQ(a->post, 4u);
  EXPECT_EQ(a->parent_pre, 0u);
  EXPECT_EQ(b->parent_pre, 1u);
  EXPECT_EQ(c->parent_pre, 2u);
  EXPECT_EQ(d->parent_pre, 1u);
}

TEST(WriterTest, RoundTripThroughParser) {
  std::string original = "<a x=\"1&amp;2\"><b>hi &lt;there&gt;</b><c/></a>";
  auto doc = ParseDocument(original);
  ASSERT_TRUE(doc.ok());
  std::string written = WriteDocument(*doc);
  auto doc2 = ParseDocument(written);
  ASSERT_TRUE(doc2.ok());
  EXPECT_EQ(WriteDocument(*doc2), written);  // fixpoint
  EXPECT_EQ(doc2->ElementCount(), doc->ElementCount());
}

TEST(WriterTest, PrettyPrintIndents) {
  auto doc = ParseDocument("<a><b><c/></b></a>");
  ASSERT_TRUE(doc.ok());
  WriterOptions options;
  options.pretty = true;
  std::string out = WriteDocument(*doc, options);
  EXPECT_NE(out.find("\n  <b>"), std::string::npos);
  EXPECT_NE(out.find("\n    <c/>"), std::string::npos);
}

TEST(DtdTest, ParsesAuctionDtdWith77Elements) {
  auto dtd = ParseDtd(xmark::AuctionDtd());
  ASSERT_TRUE(dtd.ok());
  // The paper: "The DTD ... contains 77 elements" (§6).
  EXPECT_EQ(dtd->elements().size(), 77u);
  EXPECT_TRUE(dtd->HasElement("site"));
  EXPECT_TRUE(dtd->HasElement("closed_auction"));
  const ElementDecl* person = dtd->FindElement("person");
  ASSERT_NE(person, nullptr);
  EXPECT_EQ(person->children.front(), "name");
}

TEST(DtdTest, ExtractsChildNames) {
  auto dtd = ParseDtd("<!ELEMENT a (b, c?, (d | e)*)><!ELEMENT b EMPTY>");
  ASSERT_TRUE(dtd.ok());
  const ElementDecl* a = dtd->FindElement("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->children, (std::vector<std::string>{"b", "c", "d", "e"}));
  EXPECT_TRUE(dtd->FindElement("b")->children.empty());
}

TEST(DtdTest, RejectsDuplicatesAndEmpty) {
  EXPECT_FALSE(ParseDtd("<!ELEMENT a EMPTY><!ELEMENT a EMPTY>").ok());
  EXPECT_FALSE(ParseDtd("<!ATTLIST a b CDATA #REQUIRED>").ok());
}

}  // namespace
}  // namespace ssdb::xml
