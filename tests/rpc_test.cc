#include <gtest/gtest.h>

#include <unistd.h>

#include <thread>

#include "rpc/channel.h"
#include "rpc/client.h"
#include "rpc/protocol.h"
#include "rpc/server.h"
#include "rpc/socket_channel.h"
#include "test_helpers.h"

namespace ssdb::rpc {
namespace {

using testing_helpers::BuildTestDb;
using testing_helpers::SmallAuctionXml;

TEST(ChannelTest, InProcessPairDelivers) {
  ChannelPair pair = CreateInProcessChannelPair();
  ASSERT_TRUE(pair.client->Send("ping").ok());
  auto received = pair.server->Receive();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(*received, "ping");
  ASSERT_TRUE(pair.server->Send("pong").ok());
  EXPECT_EQ(*pair.client->Receive(), "pong");
  EXPECT_EQ(pair.client->bytes_sent(), 4u);
  EXPECT_EQ(pair.client->messages_sent(), 1u);
}

TEST(ChannelTest, CloseUnblocksReceiver) {
  ChannelPair pair = CreateInProcessChannelPair();
  std::thread closer([&] { pair.client->Close(); });
  auto received = pair.server->Receive();
  EXPECT_FALSE(received.ok());
  closer.join();
}

TEST(ProtocolTest, RequestRoundTripAllOps) {
  for (Op op : {Op::kRoot, Op::kGetNode, Op::kChildren, Op::kOpenCursor,
                Op::kNextNodes, Op::kCloseCursor, Op::kEvalAt,
                Op::kEvalAtBatch, Op::kFetchShare, Op::kNodeCount,
                Op::kShutdown, Op::kEvalPointsBatch, Op::kFetchSealed,
                Op::kFetchShareBatch, Op::kChildrenBatch}) {
    Request request;
    request.op = op;
    request.pre = 12;
    request.post = 34;
    request.cursor = 56;
    request.batch = 78;
    request.point = 9;
    request.pres = {1, 2, 3};
    request.points = {4, 5};
    auto decoded = DecodeRequest(EncodeRequest(request));
    ASSERT_TRUE(decoded.ok()) << static_cast<int>(op);
    EXPECT_EQ(decoded->op, op);
  }
  EXPECT_FALSE(DecodeRequest("").ok());
  EXPECT_FALSE(DecodeRequest("\x63junk").ok());
}

TEST(ProtocolTest, HugeBatchCountRejectedWithoutAllocation) {
  // A tiny frame claiming a 2^60-element batch must decode to Corruption,
  // not attempt the allocation.
  for (Op op : {Op::kEvalAtBatch, Op::kEvalPointsBatch, Op::kFetchShareBatch,
                Op::kChildrenBatch}) {
    std::string frame;
    frame.push_back(static_cast<char>(op));
    if (op == Op::kEvalAtBatch || op == Op::kEvalPointsBatch) {
      frame.push_back(1);  // leading point/pre varint
    }
    // varint for 2^60.
    for (int i = 0; i < 8; ++i) frame.push_back(static_cast<char>(0x80));
    frame.push_back(0x10);
    auto decoded = DecodeRequest(frame);
    EXPECT_FALSE(decoded.ok()) << static_cast<int>(op);
  }
}

TEST(ProtocolTest, ResponseEnvelope) {
  auto ok_payload = DecodeResponse(EncodeOkResponse("payload"));
  ASSERT_TRUE(ok_payload.ok());
  EXPECT_EQ(*ok_payload, "payload");
  auto error = DecodeResponse(
      EncodeErrorResponse(Status::NotFound("gone fishing")));
  ASSERT_FALSE(error.ok());
  EXPECT_TRUE(error.status().IsNotFound());
  EXPECT_EQ(error.status().message(), "gone fishing");
}

// The remote filter must behave exactly like the local one it proxies.
TEST(RemoteFilterTest, MatchesLocalOverInProcessChannel) {
  auto db = BuildTestDb(SmallAuctionXml());
  ChannelPair pair = CreateInProcessChannelPair();
  ServerThread server_thread(db->ring, db->server.get(),
                             std::move(pair.server));
  RemoteServerFilter remote(db->ring, std::move(pair.client));

  auto local_root = db->server->Root();
  auto remote_root = remote.Root();
  ASSERT_TRUE(local_root.ok() && remote_root.ok());
  EXPECT_EQ(*local_root, *remote_root);

  EXPECT_EQ(*remote.NodeCount(), *db->server->NodeCount());

  auto local_children = db->server->Children(1);
  auto remote_children = remote.Children(1);
  ASSERT_TRUE(local_children.ok() && remote_children.ok());
  EXPECT_EQ(*local_children, *remote_children);

  for (gf::Elem t = 1; t < 10; ++t) {
    EXPECT_EQ(*remote.EvalAt(1, t), *db->server->EvalAt(1, t));
  }
  auto batch = remote.EvalAtBatch({1, 2, 3}, 5);
  auto local_batch = db->server->EvalAtBatch({1, 2, 3}, 5);
  ASSERT_TRUE(batch.ok() && local_batch.ok());
  EXPECT_EQ(*batch, *local_batch);

  auto points = remote.EvalPointsBatch(1, {1, 2, 3, 4});
  auto local_points = db->server->EvalPointsBatch(1, {1, 2, 3, 4});
  ASSERT_TRUE(points.ok() && local_points.ok());
  EXPECT_EQ(*points, *local_points);

  EXPECT_EQ(*remote.FetchShare(2), *db->server->FetchShare(2));

  // Multi-node batch ops match their scalar loops.
  auto share_batch = remote.FetchShareBatch({1, 2, 3});
  ASSERT_TRUE(share_batch.ok());
  ASSERT_EQ(share_batch->size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*share_batch)[i],
              *db->server->FetchShare(static_cast<uint32_t>(i + 1)));
  }
  auto children_batch = remote.ChildrenBatch({1, 2});
  auto local_children_batch = db->server->ChildrenBatch({1, 2});
  ASSERT_TRUE(children_batch.ok() && local_children_batch.ok());
  EXPECT_EQ(*children_batch, *local_children_batch);
  EXPECT_TRUE(remote.ChildrenBatch({})->empty());
  EXPECT_TRUE(remote.FetchShareBatch({})->empty());

  // Cursor pipeline across the wire.
  auto cursor = remote.OpenDescendantCursor(local_root->pre,
                                            local_root->post);
  ASSERT_TRUE(cursor.ok());
  size_t streamed = 0;
  for (;;) {
    auto nodes = remote.NextNodes(*cursor, 4);
    ASSERT_TRUE(nodes.ok());
    if (nodes->empty()) break;
    streamed += nodes->size();
  }
  EXPECT_EQ(streamed, *db->server->NodeCount() - 1);

  // Errors transport as errors.
  EXPECT_FALSE(remote.GetNode(4242).ok());

  EXPECT_GT(remote.round_trips(), 10u);
  ASSERT_TRUE(remote.Shutdown().ok());
}

TEST(SocketChannelTest, UnixSocketEndToEnd) {
  auto db = BuildTestDb(SmallAuctionXml());
  std::string socket_path = "/tmp/ssdb_rpc_test_" +
                            std::to_string(::getpid()) + ".sock";
  auto listener = UnixServerSocket::Listen(socket_path);
  ASSERT_TRUE(listener.ok());

  std::thread server_thread([&] {
    auto channel = (*listener)->Accept();
    if (!channel.ok()) return;
    RpcServer server(db->ring, db->server.get());
    server.Serve(channel->get());
  });

  auto channel = ConnectUnix(socket_path);
  ASSERT_TRUE(channel.ok());
  RemoteServerFilter remote(db->ring, std::move(*channel));
  auto root = remote.Root();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->pre, 1u);
  EXPECT_EQ(*remote.NodeCount(), *db->server->NodeCount());
  ASSERT_TRUE(remote.Shutdown().ok());
  server_thread.join();
}

TEST(SocketChannelTest, ConnectToMissingSocketFails) {
  EXPECT_FALSE(ConnectUnix("/tmp/ssdb_no_such_socket.sock").ok());
}

// A full client pipeline (ClientFilter) over the remote stub must give the
// same answers as the local pipeline.
TEST(RemoteFilterTest, ClientFilterOverRpc) {
  auto db = BuildTestDb(SmallAuctionXml());
  ChannelPair pair = CreateInProcessChannelPair();
  ServerThread server_thread(db->ring, db->server.get(),
                             std::move(pair.server));
  RemoteServerFilter remote(db->ring, std::move(pair.client));
  filter::ClientFilter remote_client(db->ring, prg::Prg(db->seed), &remote);

  auto root = remote_client.Root();
  ASSERT_TRUE(root.ok());
  gf::Elem city = *db->map.Lookup("city");
  EXPECT_TRUE(*remote_client.ContainsValue(*root, city));
  EXPECT_EQ(*remote_client.RecoverOwnValue(*root), *db->map.Lookup("site"));
}

}  // namespace
}  // namespace ssdb::rpc
