#include <gtest/gtest.h>

#include "gf/share.h"
#include "prg/prg.h"
#include "util/random.h"

namespace ssdb::gf {
namespace {

class ShareTest : public ::testing::Test {
 protected:
  ShareTest() : field_(*Field::Make(83)), ring_(field_) {}

  RingElem RandomElem(Random* rng) {
    RingElem f(ring_.n());
    for (auto& c : f) c = static_cast<Elem>(rng->Uniform(field_.q()));
    return f;
  }

  Field field_;
  Ring ring_;
};

TEST_F(ShareTest, CombineReconstructsSecret) {
  Random rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    RingElem secret = RandomElem(&rng);
    RingElem randomness = RandomElem(&rng);
    SharePair shares = SplitWithRandomness(ring_, secret, randomness);
    EXPECT_EQ(shares.client, randomness);
    EXPECT_EQ(Combine(ring_, shares.client, shares.server), secret);
  }
}

TEST_F(ShareTest, EvaluationIsLinear) {
  // eval(client, t) + eval(server, t) == eval(secret, t) for every t —
  // the fact that makes remote filtering possible without reconstruction.
  Random rng(5);
  RingElem secret = RandomElem(&rng);
  SharePair shares = SplitWithRandomness(ring_, secret, RandomElem(&rng));
  for (Elem t = 0; t < field_.q(); ++t) {
    EXPECT_EQ(EvalShares(ring_, shares.client, shares.server, t),
              ring_.Eval(secret, t));
  }
}

TEST_F(ShareTest, ServerShareAloneLooksUnrelated) {
  // With uniform randomness the server share is uniform: sharing the same
  // secret twice with different randomness gives different server shares.
  Random rng(7);
  RingElem secret = RandomElem(&rng);
  SharePair s1 = SplitWithRandomness(ring_, secret, RandomElem(&rng));
  SharePair s2 = SplitWithRandomness(ring_, secret, RandomElem(&rng));
  EXPECT_NE(s1.server, s2.server);
}

TEST_F(ShareTest, PrgShareIsRegenerable) {
  // The client share for a node position can be regenerated exactly from
  // (seed, pre) — the paper's step 4.
  prg::Seed seed = prg::Seed::FromUint64(99);
  prg::Prg prg(seed);
  Random rng(11);
  RingElem secret = RandomElem(&rng);
  const uint64_t pre = 42;

  RingElem client1 = prg.ClientShare(ring_, pre);
  SharePair shares = SplitWithRandomness(ring_, secret, client1);

  // A fresh PRG from the same seed regenerates the identical share.
  prg::Prg prg2(seed);
  RingElem client2 = prg2.ClientShare(ring_, pre);
  EXPECT_EQ(client2, shares.client);
  EXPECT_EQ(Combine(ring_, client2, shares.server), secret);
}

TEST_F(ShareTest, ZeroSecretStillHidden) {
  Random rng(13);
  RingElem zero = ring_.Zero();
  RingElem randomness = RandomElem(&rng);
  SharePair shares = SplitWithRandomness(ring_, zero, randomness);
  EXPECT_EQ(shares.server, ring_.Neg(randomness));
  EXPECT_EQ(Combine(ring_, shares.client, shares.server), zero);
}

}  // namespace
}  // namespace ssdb::gf
