#include <gtest/gtest.h>

#include "gf/share.h"
#include "prg/prg.h"
#include "util/random.h"

namespace ssdb::gf {
namespace {

class ShareTest : public ::testing::Test {
 protected:
  ShareTest() : field_(*Field::Make(83)), ring_(field_) {}

  RingElem RandomElem(Random* rng) {
    RingElem f(ring_.n());
    for (auto& c : f) c = static_cast<Elem>(rng->Uniform(field_.q()));
    return f;
  }

  Field field_;
  Ring ring_;
};

TEST_F(ShareTest, CombineReconstructsSecret) {
  Random rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    RingElem secret = RandomElem(&rng);
    RingElem randomness = RandomElem(&rng);
    SharePair shares = SplitWithRandomness(ring_, secret, randomness);
    EXPECT_EQ(shares.client, randomness);
    EXPECT_EQ(Combine(ring_, shares.client, shares.server), secret);
  }
}

TEST_F(ShareTest, EvaluationIsLinear) {
  // eval(client, t) + eval(server, t) == eval(secret, t) for every t —
  // the fact that makes remote filtering possible without reconstruction.
  Random rng(5);
  RingElem secret = RandomElem(&rng);
  SharePair shares = SplitWithRandomness(ring_, secret, RandomElem(&rng));
  for (Elem t = 0; t < field_.q(); ++t) {
    EXPECT_EQ(EvalShares(ring_, shares.client, shares.server, t),
              ring_.Eval(secret, t));
  }
}

TEST_F(ShareTest, ServerShareAloneLooksUnrelated) {
  // With uniform randomness the server share is uniform: sharing the same
  // secret twice with different randomness gives different server shares.
  Random rng(7);
  RingElem secret = RandomElem(&rng);
  SharePair s1 = SplitWithRandomness(ring_, secret, RandomElem(&rng));
  SharePair s2 = SplitWithRandomness(ring_, secret, RandomElem(&rng));
  EXPECT_NE(s1.server, s2.server);
}

TEST_F(ShareTest, PrgShareIsRegenerable) {
  // The client share for a node position can be regenerated exactly from
  // (seed, pre) — the paper's step 4.
  prg::Seed seed = prg::Seed::FromUint64(99);
  prg::Prg prg(seed);
  Random rng(11);
  RingElem secret = RandomElem(&rng);
  const uint64_t pre = 42;

  RingElem client1 = prg.ClientShare(ring_, pre);
  SharePair shares = SplitWithRandomness(ring_, secret, client1);

  // A fresh PRG from the same seed regenerates the identical share.
  prg::Prg prg2(seed);
  RingElem client2 = prg2.ClientShare(ring_, pre);
  EXPECT_EQ(client2, shares.client);
  EXPECT_EQ(Combine(ring_, client2, shares.server), secret);
}

TEST_F(ShareTest, ZeroSecretStillHidden) {
  Random rng(13);
  RingElem zero = ring_.Zero();
  RingElem randomness = RandomElem(&rng);
  SharePair shares = SplitWithRandomness(ring_, zero, randomness);
  EXPECT_EQ(shares.server, ring_.Neg(randomness));
  EXPECT_EQ(Combine(ring_, shares.client, shares.server), zero);
}

TEST_F(ShareTest, MultiSplitWithNoExtrasIsClassicSplit) {
  // m = 1 must degenerate to the 2-party split bit for bit.
  Random rng(17);
  RingElem secret = RandomElem(&rng);
  RingElem randomness = RandomElem(&rng);
  SharePair classic = SplitWithRandomness(ring_, secret, randomness);
  MultiShares multi = SplitMulti(ring_, secret, randomness, {});
  ASSERT_EQ(multi.servers.size(), 1u);
  EXPECT_EQ(multi.client, classic.client);
  EXPECT_EQ(multi.servers[0], classic.server);
}

TEST_F(ShareTest, MultiCombineReconstructsSecret) {
  Random rng(19);
  for (size_t extras : {1u, 3u, 7u}) {
    RingElem secret = RandomElem(&rng);
    std::vector<RingElem> extra;
    for (size_t i = 0; i < extras; ++i) extra.push_back(RandomElem(&rng));
    MultiShares multi = SplitMulti(ring_, secret, RandomElem(&rng), extra);
    ASSERT_EQ(multi.servers.size(), extras + 1);
    // The supplied pseudorandom slices are echoed unchanged.
    for (size_t i = 0; i < extras; ++i) {
      EXPECT_EQ(multi.servers[i + 1], extra[i]);
    }
    EXPECT_EQ(CombineMulti(ring_, multi.client, multi.servers), secret);
  }
}

TEST_F(ShareTest, MultiEvaluationIsLinear) {
  // The sum of per-slice evaluations equals eval(secret, t) at every t —
  // the fact that lets m servers evaluate independently (DESIGN.md §5).
  Random rng(23);
  RingElem secret = RandomElem(&rng);
  MultiShares multi = SplitMulti(ring_, secret, RandomElem(&rng),
                                 {RandomElem(&rng), RandomElem(&rng)});
  for (Elem t = 0; t < field_.q(); ++t) {
    EXPECT_EQ(EvalMultiShares(ring_, multi.client, multi.servers, t),
              ring_.Eval(secret, t));
  }
}

TEST_F(ShareTest, ProperSubsetOfSlicesStaysMasked) {
  // Dropping any one slice leaves a sum that differs from the secret (the
  // missing slice is uniform), so no proper subset reconstructs it.
  Random rng(29);
  RingElem secret = RandomElem(&rng);
  MultiShares multi = SplitMulti(ring_, secret, RandomElem(&rng),
                                 {RandomElem(&rng), RandomElem(&rng)});
  for (size_t drop = 0; drop < multi.servers.size(); ++drop) {
    std::vector<RingElem> partial;
    for (size_t i = 0; i < multi.servers.size(); ++i) {
      if (i != drop) partial.push_back(multi.servers[i]);
    }
    EXPECT_NE(CombineMulti(ring_, multi.client, partial), secret);
  }
}

TEST_F(ShareTest, ServerSliceStreamsAreDomainSeparated) {
  // Slice streams must differ from the client-share stream and from each
  // other, at the same node position.
  prg::Prg prg(prg::Seed::FromUint64(123));
  const uint64_t pre = 7;
  RingElem client = prg.ClientShare(ring_, pre);
  RingElem slice1 = prg.ServerSliceShare(ring_, pre, 1);
  RingElem slice2 = prg.ServerSliceShare(ring_, pre, 2);
  EXPECT_NE(client, slice1);
  EXPECT_NE(client, slice2);
  EXPECT_NE(slice1, slice2);
  // And be regenerable, like the client share.
  prg::Prg again(prg::Seed::FromUint64(123));
  EXPECT_EQ(again.ServerSliceShare(ring_, pre, 1), slice1);
}

}  // namespace
}  // namespace ssdb::gf
