#!/usr/bin/env python3
"""Regression tests for tools/check_bench.py.

Run as a ctest:  python3 tests/check_bench_test.py <path-to-check_bench.py>

Covers the guard semantics the CI bench job relies on:
  * matched rows compare quietly; a guarded drop past the threshold warns
    (and fails under --strict);
  * fresh rows without a baseline counterpart are informational;
  * baseline rows without a fresh counterpart at a scale that ran WARN —
    silently losing guard coverage is the bug this protects against;
  * baseline rows at a scale that did not run stay quiet.
"""

import json
import os
import subprocess
import sys
import tempfile

CHECK_BENCH = None


def run(captures, baseline, extra_args=()):
    """Runs check_bench.py in a temp dir; returns (exit code, stdout)."""
    with tempfile.TemporaryDirectory() as tmp:
        capture_paths = []
        for i, lines in enumerate(captures):
            path = os.path.join(tmp, f"capture{i}.txt")
            with open(path, "w", encoding="utf-8") as handle:
                for block in lines:
                    handle.write("BENCH_JSON " + json.dumps(block) + "\n")
            capture_paths.append(path)
        baseline_path = os.path.join(tmp, "baseline.json")
        with open(baseline_path, "w", encoding="utf-8") as handle:
            json.dump({"results": baseline}, handle)
        out_path = os.path.join(tmp, "out.json")
        proc = subprocess.run(
            [sys.executable, CHECK_BENCH, "--baseline", baseline_path,
             "--out", out_path, *extra_args, *capture_paths],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout + proc.stderr


def block(name, scale, rows):
    return {"bench": name, "scale": scale, "rows": rows}


def expect(condition, message):
    if not condition:
        print(f"FAIL: {message}")
        sys.exit(1)
    print(f"ok: {message}")


def main():
    global CHECK_BENCH
    if len(sys.argv) != 2:
        print("usage: check_bench_test.py <path-to-check_bench.py>")
        return 1
    CHECK_BENCH = sys.argv[1]

    fresh = [block("rpc", 0.05, [{"servers": 1, "qps": 100.0}])]
    same = [block("rpc", 0.05, [{"servers": 1, "qps": 101.0}])]

    # Matched row, no movement: quiet success.
    code, out = run([fresh], same)
    expect(code == 0 and "::warning" not in out,
           "matched rows within threshold stay quiet")

    # Guarded drop past the threshold: warning, soft exit.
    slow = [block("rpc", 0.05, [{"servers": 1, "qps": 10.0}])]
    code, out = run([slow], same)
    expect(code == 0 and "bench regression" in out,
           "qps drop warns and fails soft")
    code, out = run([slow], same, extra_args=("--strict",))
    expect(code == 1, "qps drop fails hard under --strict")

    # Fresh row with no baseline counterpart: informational only.
    extra_fresh = [block("rpc", 0.05, [{"servers": 1, "qps": 100.0},
                                       {"servers": 2, "qps": 90.0}])]
    code, out = run([extra_fresh], same)
    expect(code == 0 and "without a baseline counterpart" in out
           and "guard coverage lost" not in out,
           "fresh-only rows are informational")

    # Baseline row with no fresh counterpart at a scale that ran: the
    # orphan warning this test battery exists for.
    wide_baseline = [block("rpc", 0.05, [{"servers": 1, "qps": 101.0},
                                         {"servers": 4, "qps": 80.0}])]
    code, out = run([fresh], wide_baseline)
    expect(code == 0 and "guard coverage lost" in out
           and "servers=4" in out,
           "orphaned baseline row warns with its identity")

    # Same orphan at a scale that did NOT run: quiet (a partial local run
    # should not cry wolf about every other scale).
    other_scale = [block("rpc", 1.0, [{"servers": 4, "qps": 80.0}])]
    code, out = run([fresh], same + other_scale)
    expect(code == 0 and "guard coverage lost" not in out,
           "baseline rows at un-run scales stay quiet")

    # Orphaned baseline rows with no guarded metric carry no guard to lose.
    unguarded = [block("rpc", 0.05, [{"servers": 9, "bytes": 123}])]
    code, out = run([fresh], same + unguarded)
    expect(code == 0 and "guard coverage lost" not in out,
           "unguarded baseline rows are not flagged")

    print("all check_bench tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
