// Randomized property tests over the whole pipeline:
//  * XML writer/parser round-trip on random trees;
//  * random queries on random documents: strict engine results must equal
//    the plaintext ground truth exactly, non-strict must be a superset —
//    for both engines, across many (document, query) pairs;
//  * the RPC request decoder: random, truncated, and oversized frames fed
//    to RpcServer::HandleRequest must yield error frames, never crashes or
//    hangs (what an untrusted client can throw at a concurrent server,
//    DESIGN.md §7);
//  * the verified-aggregation reply path (DESIGN.md §9): truncated,
//    bit-flipped, random and oversized proof-bearing frames must end in an
//    error or a verification failure, never a crash or a silently wrong
//    answer.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/database.h"
#include "query/advanced_engine.h"
#include "query/ground_truth.h"
#include "query/xpath.h"
#include "query/simple_engine.h"
#include "rpc/channel.h"
#include "rpc/client.h"
#include "rpc/protocol.h"
#include "rpc/server.h"
#include "shard/catalog.h"
#include "shard/router.h"
#include "storage/mutation.h"
#include "test_helpers.h"
#include "util/random.h"
#include "xmark/generator.h"
#include "xml/writer.h"

namespace ssdb {
namespace {

using query::MatchMode;
using query::Step;

// Small tag alphabet so that random documents have repeated tags, nesting
// of a tag inside itself, and dead branches — the interesting cases.
const char* kTags[] = {"a", "b", "c", "d", "e"};
constexpr size_t kTagCount = 5;

void BuildRandomTree(Random* rng, int depth, int max_depth,
                     std::string* out) {
  const char* tag = kTags[rng->Uniform(kTagCount)];
  *out += "<";
  *out += tag;
  *out += ">";
  if (depth < max_depth) {
    uint64_t children = rng->Uniform(4);  // 0..3
    for (uint64_t i = 0; i < children; ++i) {
      BuildRandomTree(rng, depth + 1, max_depth, out);
    }
  }
  *out += "</";
  *out += tag;
  *out += ">";
}

std::string RandomDocument(Random* rng) {
  std::string out;
  BuildRandomTree(rng, 0, 4 + static_cast<int>(rng->Uniform(2)), &out);
  return out;
}

query::Query RandomQuery(Random* rng) {
  query::Query q;
  size_t steps = 1 + rng->Uniform(4);
  for (size_t i = 0; i < steps; ++i) {
    Step step;
    step.axis = rng->Bernoulli(0.4) ? Step::Axis::kDescendant
                                    : Step::Axis::kChild;
    double kind_roll = rng->NextDouble();
    if (kind_roll < 0.15) {
      step.kind = Step::Kind::kWildcard;
    } else if (kind_roll < 0.25 && i > 0) {
      step.kind = Step::Kind::kParent;
    } else {
      step.kind = Step::Kind::kName;
      step.name = kTags[rng->Uniform(kTagCount)];
    }
    // Occasional single-step predicate.
    if (rng->Bernoulli(0.2) && step.kind == Step::Kind::kName) {
      Step pred;
      pred.axis = rng->Bernoulli(0.5) ? Step::Axis::kDescendant
                                      : Step::Axis::kChild;
      pred.kind = Step::Kind::kName;
      pred.name = kTags[rng->Uniform(kTagCount)];
      step.predicate.push_back(std::move(pred));
    }
    q.steps.push_back(std::move(step));
  }
  q.text = query::QueryToString(q);
  return q;
}

TEST(FuzzTest, WriterParserRoundTrip) {
  Random rng(2025);
  for (int trial = 0; trial < 200; ++trial) {
    std::string xml = RandomDocument(&rng);
    auto doc = xml::ParseDocument(xml);
    ASSERT_TRUE(doc.ok()) << xml;
    std::string written = xml::WriteDocument(*doc);
    auto doc2 = xml::ParseDocument(written);
    ASSERT_TRUE(doc2.ok()) << written;
    EXPECT_EQ(xml::WriteDocument(*doc2), written);
    EXPECT_EQ(doc2->ElementCount(), doc->ElementCount());
  }
}

TEST(FuzzTest, RandomQueriesMatchGroundTruth) {
  Random rng(777);
  int non_trivial = 0;
  for (int doc_trial = 0; doc_trial < 8; ++doc_trial) {
    auto db = testing_helpers::BuildTestDb(RandomDocument(&rng));
    query::SimpleEngine simple(db->client.get(), &db->map);
    query::AdvancedEngine advanced(db->client.get(), &db->map);

    for (int query_trial = 0; query_trial < 20; ++query_trial) {
      query::Query q = RandomQuery(&rng);
      auto truth = query::EvaluateGroundTruth(q, db->doc);
      ASSERT_TRUE(truth.ok()) << q.text;
      std::set<uint32_t> expected(truth->begin(), truth->end());
      if (!expected.empty()) ++non_trivial;

      for (query::QueryEngine* engine :
           {static_cast<query::QueryEngine*>(&simple),
            static_cast<query::QueryEngine*>(&advanced)}) {
        auto strict = engine->Execute(q, MatchMode::kEquality, nullptr);
        ASSERT_TRUE(strict.ok()) << q.text;
        std::set<uint32_t> actual;
        for (const auto& node : *strict) actual.insert(node.pre);
        EXPECT_EQ(actual, expected)
            << engine->name() << " strict diverged on " << q.text;

        auto loose = engine->Execute(q, MatchMode::kContainment, nullptr);
        ASSERT_TRUE(loose.ok()) << q.text;
        std::set<uint32_t> loose_set;
        for (const auto& node : *loose) loose_set.insert(node.pre);
        for (uint32_t pre : expected) {
          EXPECT_TRUE(loose_set.count(pre) > 0)
              << engine->name() << " non-strict lost " << pre << " on "
              << q.text;
        }
      }
    }
  }
  // The corpus must actually exercise matches, not just empty results.
  EXPECT_GT(non_trivial, 20);
}

TEST(FuzzTest, EncoderHandlesAdversarialShapes) {
  // Degenerate but legal documents: deep chains, wide fans, self-nesting.
  std::string deep;
  for (int i = 0; i < 60; ++i) deep += "<a>";
  for (int i = 0; i < 60; ++i) deep += "</a>";
  auto db1 = testing_helpers::BuildTestDb(deep);
  EXPECT_EQ(db1->encode_result.node_count, 60u);
  EXPECT_EQ(db1->encode_result.max_depth, 60u);
  // The root of a 60-deep chain of <a> contains a (with multiplicity 60):
  // reduction wraps the degree but evaluations survive.
  auto root = db1->client->Root();
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(*db1->client->ContainsValue(*root, *db1->map.Lookup("a")));
  EXPECT_EQ(*db1->client->RecoverOwnValue(*root), *db1->map.Lookup("a"));

  std::string wide = "<a>";
  for (int i = 0; i < 300; ++i) wide += "<b/>";
  wide += "</a>";
  auto db2 = testing_helpers::BuildTestDb(wide);
  EXPECT_EQ(db2->encode_result.node_count, 301u);
  auto root2 = db2->client->Root();
  ASSERT_TRUE(root2.ok());
  // Equality test with 300 children still recovers the root tag.
  EXPECT_EQ(*db2->client->RecoverOwnValue(*root2), *db2->map.Lookup("a"));
}

TEST(FuzzTest, QueryParserNeverCrashesOnGarbage) {
  Random rng(13);
  const char charset[] = "/abc*[].\"()， ";
  for (int trial = 0; trial < 500; ++trial) {
    std::string garbage;
    size_t len = rng.Uniform(24);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(charset[rng.Uniform(sizeof(charset) - 1)]);
    }
    // Must return a Status, never crash; parse success is fine too.
    auto parsed = query::ParseQuery(garbage);
    if (parsed.ok()) {
      EXPECT_FALSE(parsed->steps.empty());
    }
  }
}

// Every frame must produce a well-formed response frame: an ok envelope
// for the (rare) random frame that decodes to a valid request, an error
// envelope for everything else. No crash, no hang, no empty reply.
TEST(FuzzTest, RpcRequestDecoderNeverCrashesOnGarbage) {
  auto db = testing_helpers::BuildTestDb(testing_helpers::SmallAuctionXml());
  rpc::RpcServer server(db->ring, db->server.get());
  Random rng(4242);

  auto check = [&](const std::string& frame) {
    std::string response = server.HandleRequest(frame);
    ASSERT_FALSE(response.empty());
    // DecodeResponse must parse the envelope either way; a transported
    // error Status is the expected outcome for garbage.
    auto decoded = rpc::DecodeResponse(response);
    if (!decoded.ok()) {
      EXPECT_FALSE(decoded.status().message().empty());
    }
  };

  // Purely random frames over all byte values, short and long.
  for (int trial = 0; trial < 2000; ++trial) {
    size_t len = rng.Uniform(trial % 5 == 0 ? 512 : 24);
    std::string frame;
    frame.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      frame.push_back(static_cast<char>(rng.Uniform(256)));
    }
    check(frame);
  }

  // Truncations of every valid request, at every prefix length.
  rpc::Request request;
  request.pre = 3;
  request.post = 9;
  request.cursor = 1;
  request.batch = 4;
  request.point = 5;
  request.pres = {1, 2, 3};
  request.points = {4, 5};
  request.agg_columns = 0x15;  // kAggregate/kAggregateBatch fields
  request.value_indexes = {0, 2};
  request.doc_id = "doc-x";  // kCatalogResolve field
  request.txn = 1;           // mutation fields (ops 24..26, DESIGN.md §12)
  request.phase = rpc::MutationPhase::kPrepare;
  request.plan = "not a plan";
  // One past kFetchColumnsBatch (27): the last valid opcode plus an
  // invalid probe.
  for (uint8_t op = 0; op <= 28; ++op) {
    request.op = static_cast<rpc::Op>(op);
    std::string valid = rpc::EncodeRequest(request);
    for (size_t cut = 0; cut <= valid.size(); ++cut) {
      check(valid.substr(0, cut));
    }
  }

  // Oversized batch counts: varints claiming 2^40..2^62 elements must be
  // rejected at decode, not allocated (would OOM or hang the worker).
  for (int shift = 40; shift <= 62; ++shift) {
    // Batch opcodes, including the mutation planner's column fetch (27).
    for (uint8_t op : {8, 12, 14, 15, 16, 17, 18, 19, 27}) {
      std::string frame;
      frame.push_back(static_cast<char>(op));
      // kEvalAtBatch/kEvalPointsBatch carry a point/pre varint before the
      // count; the aggregate ops (16..19) a column-mask byte (+ a value
      // index for the scalar forms); for the others the count comes first.
      if (op == 8 || op == 12) frame.push_back(1);
      if (op >= 16 && op <= 19) frame.push_back(0x01);
      if (op == 16 || op == 18) frame.push_back(0);
      uint64_t huge = uint64_t{1} << shift;
      while (huge >= 0x80) {
        frame.push_back(static_cast<char>(0x80 | (huge & 0x7f)));
        huge >>= 7;
      }
      frame.push_back(static_cast<char>(huge));
      std::string response = server.HandleRequest(frame);
      ASSERT_FALSE(response.empty());
      EXPECT_FALSE(rpc::DecodeResponse(response).ok());
    }
  }

  // Aggregate frames with wild parameters (DESIGN.md §8): random column
  // masks (including invalid bits), out-of-range value indexes, and absent
  // pres must produce an ok or error envelope — never a crash — and valid
  // folds must stay exact after the barrage.
  constexpr rpc::Op kAggOps[] = {
      rpc::Op::kAggregate, rpc::Op::kAggregateBatch,
      rpc::Op::kAggregateVerified, rpc::Op::kAggregateBatchVerified};
  for (int trial = 0; trial < 500; ++trial) {
    rpc::Request agg_request;
    agg_request.op = kAggOps[rng.Uniform(4)];
    agg_request.agg_columns = static_cast<uint8_t>(rng.Uniform(256));
    size_t groups = 1 + rng.Uniform(4);
    for (size_t g = 0; g < groups; ++g) {
      agg_request.value_indexes.push_back(
          static_cast<uint32_t>(rng.Uniform(64)));
    }
    size_t frontier = rng.Uniform(6);
    for (size_t i = 0; i < frontier; ++i) {
      agg_request.pres.push_back(static_cast<uint32_t>(rng.Uniform(4096)));
    }
    check(rpc::EncodeRequest(agg_request));
  }

  // The garbage barrage must not have corrupted the server: a normal
  // request still round-trips, and no cursors leaked from random frames
  // that happened to decode as kOpenCursor.
  rpc::Request probe;
  probe.op = rpc::Op::kNodeCount;
  auto after = rpc::DecodeResponse(server.HandleRequest(
      rpc::EncodeRequest(probe)));
  ASSERT_TRUE(after.ok());
  db->server->EndSession(filter::SessionId{0});
  EXPECT_EQ(db->server->OpenCursorCount(), 0u);
}

// The mutation ops (24..26, DESIGN.md §12) under the decoder barrage. The
// extra stake beyond "never crash": a mutation frame the server rejects —
// truncated, count-bombed, or carrying a corrupt plan — must leave the
// slice exactly as it was. No version bump, no pending txn, no node moved:
// an error frame must never cost a silent partial write.
TEST(FuzzTest, MutationOpsNeverCorruptStateOnGarbage) {
  auto db = testing_helpers::BuildTestDb(testing_helpers::SmallAuctionXml());
  rpc::RpcServer server(db->ring, db->server.get());
  Random rng(9119);

  auto put_varint = [](std::string* out, uint64_t v) {
    while (v >= 0x80) {
      out->push_back(static_cast<char>(0x80 | (v & 0x7f)));
      v >>= 7;
    }
    out->push_back(static_cast<char>(v));
  };
  auto expect_untouched = [&](const char* when) {
    auto states = db->server->MutationStates();
    ASSERT_TRUE(states.ok()) << when;
    for (const storage::MutationState& st : *states) {
      EXPECT_EQ(st.version, 0u) << when;
      EXPECT_EQ(st.pending_txn, 0u) << when;
    }
    auto count = db->store->NodeCount();
    ASSERT_TRUE(count.ok()) << when;
    EXPECT_EQ(*count, db->encode_result.node_count) << when;
  };
  expect_untouched("before the barrage");

  constexpr rpc::Op kMutationOps[] = {rpc::Op::kInsert, rpc::Op::kUpdate,
                                      rpc::Op::kDelete};
  constexpr storage::MutationKind kKinds[] = {storage::MutationKind::kInsert,
                                              storage::MutationKind::kUpdate,
                                              storage::MutationKind::kDelete};

  // A structurally valid (if vacuous) plan per op, so the frames exercise
  // the full decode path; every proper truncation must yield an error frame.
  for (int i = 0; i < 3; ++i) {
    storage::MutationPlan plan;
    plan.kind = kKinds[i];
    plan.base_version = 0;
    plan.next_nonce = prg::kFirstMutationNonce + 1;
    rpc::Request request;
    request.op = kMutationOps[i];
    request.txn = 1;
    request.phase = rpc::MutationPhase::kPrepare;
    request.plan = storage::EncodeMutationPlan(plan);
    std::string valid = rpc::EncodeRequest(request);
    for (size_t cut = 0; cut < valid.size(); ++cut) {
      std::string response = server.HandleRequest(valid.substr(0, cut));
      ASSERT_FALSE(response.empty());
      EXPECT_FALSE(rpc::DecodeResponse(response).ok())
          << "op " << static_cast<int>(kMutationOps[i]) << " cut " << cut;
    }
    expect_untouched("after truncated prepares");

    // The full frame prepares; a commit frame for a *different* txn must be
    // refused without disturbing the prepared one (an abort of an unknown
    // txn is a defined no-op); then abort the prepared txn.
    ASSERT_TRUE(rpc::DecodeResponse(server.HandleRequest(valid)).ok());
    rpc::Request wrong;
    wrong.op = kMutationOps[i];
    wrong.txn = 55;
    wrong.phase = rpc::MutationPhase::kCommit;
    EXPECT_FALSE(
        rpc::DecodeResponse(server.HandleRequest(rpc::EncodeRequest(wrong)))
            .ok());
    {
      auto states = db->server->MutationStates();
      ASSERT_TRUE(states.ok());
      EXPECT_EQ((*states)[0].pending_txn, 1u);  // prepared txn undisturbed
    }
    rpc::Request abort_request;
    abort_request.op = kMutationOps[i];
    abort_request.txn = 1;
    abort_request.phase = rpc::MutationPhase::kAbort;
    ASSERT_TRUE(
        rpc::DecodeResponse(server.HandleRequest(rpc::EncodeRequest(
            abort_request)))
            .ok());
    expect_untouched("after abort");

    // A plan whose kind disagrees with the op must be rejected at prepare —
    // a frame can never smuggle a delete inside an "update".
    rpc::Request smuggled = request;
    smuggled.op = kMutationOps[(i + 1) % 3];
    EXPECT_FALSE(
        rpc::DecodeResponse(server.HandleRequest(rpc::EncodeRequest(smuggled)))
            .ok());
    expect_untouched("after kind/op mismatch");
  }

  // Count bombs inside the plan: an upsert count claiming 2^40..2^62 rows
  // must be rejected at decode, never sized into a vector.
  for (int shift = 40; shift <= 62; ++shift) {
    std::string bomb;
    put_varint(&bomb, static_cast<uint64_t>(storage::MutationKind::kUpdate));
    put_varint(&bomb, 0);                            // base_version
    put_varint(&bomb, prg::kFirstMutationNonce + 1);  // next_nonce
    put_varint(&bomb, 1);                            // erase_lo
    put_varint(&bomb, 0);                            // erase_hi
    put_varint(&bomb, 0);                            // shift_pre_gt
    put_varint(&bomb, 0);                            // zigzag shift_delta
    put_varint(&bomb, uint64_t{1} << shift);         // upsert-count bomb
    rpc::Request request;
    request.op = rpc::Op::kUpdate;
    request.txn = 1;
    request.phase = rpc::MutationPhase::kPrepare;
    request.plan = bomb;
    std::string response = server.HandleRequest(rpc::EncodeRequest(request));
    ASSERT_FALSE(response.empty());
    EXPECT_FALSE(rpc::DecodeResponse(response).ok());
  }
  expect_untouched("after count bombs");

  // Random parameters through the real encoder: arbitrary txns, phases and
  // plan bytes. Prepares that happen to decode are aborted right away; no
  // frame may commit anything (version stays 0).
  for (int trial = 0; trial < 500; ++trial) {
    rpc::Request request;
    request.op = kMutationOps[rng.Uniform(3)];
    request.txn = rng.Uniform(4);
    request.phase = static_cast<rpc::MutationPhase>(rng.Uniform(3));
    if (request.phase == rpc::MutationPhase::kPrepare) {
      size_t len = rng.Uniform(48);
      for (size_t i = 0; i < len; ++i) {
        request.plan.push_back(static_cast<char>(rng.Uniform(256)));
      }
    }
    std::string response = server.HandleRequest(rpc::EncodeRequest(request));
    ASSERT_FALSE(response.empty());
    auto states = db->server->MutationStates();
    ASSERT_TRUE(states.ok());
    for (const storage::MutationState& st : *states) {
      EXPECT_EQ(st.version, 0u);
      if (st.pending_txn != 0) {
        rpc::Request abort_request;
        abort_request.op = rpc::Op::kUpdate;
        abort_request.txn = st.pending_txn;
        abort_request.phase = rpc::MutationPhase::kAbort;
        ASSERT_TRUE(rpc::DecodeResponse(
                        server.HandleRequest(rpc::EncodeRequest(abort_request)))
                        .ok());
      }
    }
  }
  expect_untouched("after random mutation frames");

  // The barrage over, the document still answers exactly.
  auto root = db->client->Root();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*db->client->RecoverOwnValue(*root), *db->map.Lookup("site"));
}

// Shard-catalog wire codec (DESIGN.md §10) under the same adversarial
// treatment ops 16–19 get above: truncations at every prefix, single-bit
// flips, purely random frames, and varints claiming absurd entry/slice
// counts. Decoding must reject cleanly before allocating; and whenever a
// mutated catalog still decodes AND still routes, the merged corpus totals
// must match ground truth — a flipped bit may break routing, it must never
// silently change an answer.
TEST(FuzzTest, ShardCatalogCodecNeverCrashesOrMisroutes) {
  // A tiny real corpus the semantic check can route against.
  gf::Field field = *gf::Field::Make(83);
  mapping::TagMap map = *core::EncryptedXmlDatabase::TagMapForDtd(
      xmark::AuctionDtd(), field, false);
  xmark::GeneratorOptions gen;
  gen.target_bytes = 4 << 10;
  gen.seed = 5;
  prg::Seed seed = prg::Seed::FromUint64(313);
  core::DatabaseOptions options;
  options.backend = core::Backend::kMemory;
  options.servers = 2;
  auto db = core::EncryptedXmlDatabase::Encode(
      xmark::GenerateAuctionDocument(gen).xml, map, seed, options);
  ASSERT_TRUE(db.ok());
  uint64_t truth = (*db)
                       ->Query("count(/site//person)",
                               core::EngineKind::kAdvanced,
                               query::MatchMode::kEquality)
                       ->aggregate.Total();

  shard::ShardCatalog catalog;
  shard::ShardEntry entry;
  entry.doc_id = "doc";
  entry.group = 0;
  entry.slices = {"mem://doc/0", "mem://doc/1"};
  ASSERT_TRUE(catalog.Add(entry).ok());
  std::map<std::string, std::vector<filter::ServerFilter*>> backends;
  backends["doc"] = {(*db)->slice_filter(0), (*db)->slice_filter(1)};
  std::map<std::string, prg::Seed> seeds;
  seeds.emplace("doc", seed);

  auto query = query::ParseQuery("count(/site//person)");
  ASSERT_TRUE(query.ok());
  auto route_matches_truth = [&](const shard::ShardCatalog& mutated) {
    core::CorpusOptions copts;
    auto router = shard::Router::FromBackends(mutated, &map, seed, seeds,
                                              copts, backends);
    if (!router.ok()) return;  // flipped ids/slices: fine, it refused
    auto corpus =
        (*router)->QueryCorpus(*query, query::MatchMode::kEquality);
    if (!corpus.ok()) return;
    EXPECT_EQ(corpus->aggregate.Total(), truth);
  };

  std::string wire = shard::EncodeCatalog(catalog);

  // Truncations at every prefix length must reject, never crash.
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(shard::DecodeCatalog(wire.substr(0, cut)).ok());
  }

  // Every single-bit flip: reject, or decode to a catalog that either
  // fails to route or routes to the true totals.
  for (size_t bit = 0; bit < wire.size() * 8; ++bit) {
    std::string flipped = wire;
    flipped[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    auto decoded = shard::DecodeCatalog(flipped);
    if (decoded.ok()) route_matches_truth(*decoded);
  }

  // Purely random frames.
  Random rng(1717);
  for (int trial = 0; trial < 2000; ++trial) {
    size_t len = rng.Uniform(trial % 5 == 0 ? 256 : 24);
    std::string frame;
    frame.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      frame.push_back(static_cast<char>(rng.Uniform(256)));
    }
    auto decoded = shard::DecodeCatalog(frame);
    if (decoded.ok()) route_matches_truth(*decoded);
    shard::DecodeEntry(frame);  // must not crash; outcome is irrelevant
  }

  // Oversized counts: a varint claiming 2^40..2^62 entries (or slices)
  // must be rejected up front — the decoder may never size a vector from
  // an unvalidated count (would OOM before the truncation is noticed).
  for (int shift = 40; shift <= 62; ++shift) {
    uint64_t huge = uint64_t{1} << shift;
    std::string counted;
    uint64_t value = huge;
    while (value >= 0x80) {
      counted.push_back(static_cast<char>(0x80 | (value & 0x7f)));
      value >>= 7;
    }
    counted.push_back(static_cast<char>(value));
    std::string catalog_frame;
    catalog_frame.push_back(1);  // version
    catalog_frame += counted;    // entry-count bomb
    EXPECT_FALSE(shard::DecodeCatalog(catalog_frame).ok());
    // An entry whose slice count is huge: valid doc id, then the bomb.
    std::string entry_frame;
    entry_frame.push_back(3);
    entry_frame += "doc";
    entry_frame.push_back(0);  // group
    entry_frame += counted;
    EXPECT_FALSE(shard::DecodeEntry(entry_frame).ok());
  }

  // The unmutated wire still round-trips after the barrage.
  auto survivor = shard::DecodeCatalog(wire);
  ASSERT_TRUE(survivor.ok());
  EXPECT_EQ(survivor->entries(), catalog.entries());
  route_matches_truth(*survivor);
}

// Proof-bearing aggregate replies (DESIGN.md §9) under an adversarial
// transport: the verified-aggregation client is fed truncated, bit-flipped,
// random and oversized reply frames through a scripted channel. Every
// attempt must end in an error or a verification failure — an ok result
// must carry the true totals. Never a crash, never a silent accept.
TEST(FuzzTest, VerifiedAggregateReplyDecoderNeverAcceptsGarbage) {
  // One-shot channel: ignores requests, answers the first Receive with the
  // scripted frame and fails afterwards.
  class ScriptedChannel : public rpc::Channel {
   public:
    explicit ScriptedChannel(std::string reply) : reply_(std::move(reply)) {}
    Status Send(std::string_view) override { return Status::OK(); }
    StatusOr<std::string> Receive() override {
      if (delivered_) return Status::Internal("scripted reply exhausted");
      delivered_ = true;
      return reply_;
    }
    void Close() override {}
    uint64_t bytes_sent() const override { return 0; }
    uint64_t bytes_received() const override { return 0; }
    uint64_t messages_sent() const override { return 0; }

   private:
    std::string reply_;
    bool delivered_ = false;
  };

  auto db = testing_helpers::BuildTestDb(testing_helpers::SmallAuctionXml());
  agg::Spec spec;
  spec.columns = agg::ColBit(agg::Col::kEqualSelf) |
                 agg::ColBit(agg::Col::kEqualDesc);
  spec.value_count = static_cast<uint32_t>(db->map.size());
  spec.value_indexes = {0, 1};
  spec.pres = {1};
  auto truth = db->client->AggregateVerified(spec);
  ASSERT_TRUE(truth.ok()) << truth.status().ToString();

  auto attempt = [&](const std::string& frame) {
    auto channel = std::make_unique<ScriptedChannel>(frame);
    rpc::RemoteServerFilter remote(db->ring, std::move(channel));
    filter::ClientFilter client(db->ring, prg::Prg(db->seed), &remote);
    auto result = client.AggregateVerified(spec);
    if (result.ok()) {
      EXPECT_EQ(result->totals, truth->totals) << "silently wrong answer";
    }
    return result.ok();
  };

  // The genuine reply, produced by a real server for this exact spec.
  rpc::RpcServer server(db->ring, db->server.get());
  rpc::Request request;
  request.op = rpc::Op::kAggregateBatchVerified;
  request.agg_columns = spec.columns;
  request.value_indexes = spec.value_indexes;
  request.pres = spec.pres;
  std::string genuine = server.HandleRequest(rpc::EncodeRequest(request));
  ASSERT_TRUE(attempt(genuine)) << "honest reply must verify";

  // Every proper truncation of the genuine frame.
  for (size_t cut = 0; cut < genuine.size(); ++cut) {
    attempt(genuine.substr(0, cut));
  }

  // Every single-bit corruption of the genuine frame.
  for (size_t byte = 0; byte < genuine.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string frame = genuine;
      frame[byte] ^= static_cast<char>(1u << bit);
      attempt(frame);
    }
  }

  // Random frames, half of them wearing a valid ok-envelope byte.
  Random rng(1889);
  for (int trial = 0; trial < 300; ++trial) {
    std::string frame;
    size_t len = rng.Uniform(96);
    frame.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      frame.push_back(static_cast<char>(rng.Uniform(256)));
    }
    if (!frame.empty() && rng.Bernoulli(0.5)) frame[0] = 0x01;
    attempt(frame);
  }

  // Oversized counts: an ok envelope whose entry (or per-entry word) count
  // varint claims 2^40..2^62 elements must be rejected, not allocated.
  for (int shift = 40; shift <= 62; ++shift) {
    for (bool nested : {false, true}) {
      std::string frame;
      frame.push_back(0x01);       // ok envelope
      if (nested) frame.push_back(0x01);  // one entry, huge word count
      uint64_t huge = uint64_t{1} << shift;
      while (huge >= 0x80) {
        frame.push_back(static_cast<char>(0x80 | (huge & 0x7f)));
        huge >>= 7;
      }
      frame.push_back(static_cast<char>(huge));
      EXPECT_FALSE(attempt(frame));
    }
  }
}

TEST(FuzzTest, SaxParserNeverCrashesOnGarbage) {
  Random rng(17);
  const char charset[] = "<>ab/\"=' !&;-?[]";
  class NullHandler : public xml::SaxHandler {
   public:
    Status StartElement(std::string_view,
                        const xml::AttributeList&) override {
      return Status::OK();
    }
    Status EndElement(std::string_view) override { return Status::OK(); }
    Status Characters(std::string_view) override { return Status::OK(); }
  };
  for (int trial = 0; trial < 1000; ++trial) {
    std::string garbage;
    size_t len = rng.Uniform(64);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(charset[rng.Uniform(sizeof(charset) - 1)]);
    }
    NullHandler handler;
    xml::SaxParser parser;
    parser.Parse(garbage, &handler).ok();  // must not crash
  }
}

}  // namespace
}  // namespace ssdb
