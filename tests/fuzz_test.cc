// Randomized property tests over the whole pipeline:
//  * XML writer/parser round-trip on random trees;
//  * random queries on random documents: strict engine results must equal
//    the plaintext ground truth exactly, non-strict must be a superset —
//    for both engines, across many (document, query) pairs.

#include <gtest/gtest.h>

#include <set>

#include "query/advanced_engine.h"
#include "query/ground_truth.h"
#include "query/simple_engine.h"
#include "test_helpers.h"
#include "util/random.h"
#include "xml/writer.h"

namespace ssdb {
namespace {

using query::MatchMode;
using query::Step;

// Small tag alphabet so that random documents have repeated tags, nesting
// of a tag inside itself, and dead branches — the interesting cases.
const char* kTags[] = {"a", "b", "c", "d", "e"};
constexpr size_t kTagCount = 5;

void BuildRandomTree(Random* rng, int depth, int max_depth,
                     std::string* out) {
  const char* tag = kTags[rng->Uniform(kTagCount)];
  *out += "<";
  *out += tag;
  *out += ">";
  if (depth < max_depth) {
    uint64_t children = rng->Uniform(4);  // 0..3
    for (uint64_t i = 0; i < children; ++i) {
      BuildRandomTree(rng, depth + 1, max_depth, out);
    }
  }
  *out += "</";
  *out += tag;
  *out += ">";
}

std::string RandomDocument(Random* rng) {
  std::string out;
  BuildRandomTree(rng, 0, 4 + static_cast<int>(rng->Uniform(2)), &out);
  return out;
}

query::Query RandomQuery(Random* rng) {
  query::Query q;
  size_t steps = 1 + rng->Uniform(4);
  for (size_t i = 0; i < steps; ++i) {
    Step step;
    step.axis = rng->Bernoulli(0.4) ? Step::Axis::kDescendant
                                    : Step::Axis::kChild;
    double kind_roll = rng->NextDouble();
    if (kind_roll < 0.15) {
      step.kind = Step::Kind::kWildcard;
    } else if (kind_roll < 0.25 && i > 0) {
      step.kind = Step::Kind::kParent;
    } else {
      step.kind = Step::Kind::kName;
      step.name = kTags[rng->Uniform(kTagCount)];
    }
    // Occasional single-step predicate.
    if (rng->Bernoulli(0.2) && step.kind == Step::Kind::kName) {
      Step pred;
      pred.axis = rng->Bernoulli(0.5) ? Step::Axis::kDescendant
                                      : Step::Axis::kChild;
      pred.kind = Step::Kind::kName;
      pred.name = kTags[rng->Uniform(kTagCount)];
      step.predicate.push_back(std::move(pred));
    }
    q.steps.push_back(std::move(step));
  }
  q.text = query::QueryToString(q);
  return q;
}

TEST(FuzzTest, WriterParserRoundTrip) {
  Random rng(2025);
  for (int trial = 0; trial < 200; ++trial) {
    std::string xml = RandomDocument(&rng);
    auto doc = xml::ParseDocument(xml);
    ASSERT_TRUE(doc.ok()) << xml;
    std::string written = xml::WriteDocument(*doc);
    auto doc2 = xml::ParseDocument(written);
    ASSERT_TRUE(doc2.ok()) << written;
    EXPECT_EQ(xml::WriteDocument(*doc2), written);
    EXPECT_EQ(doc2->ElementCount(), doc->ElementCount());
  }
}

TEST(FuzzTest, RandomQueriesMatchGroundTruth) {
  Random rng(777);
  int non_trivial = 0;
  for (int doc_trial = 0; doc_trial < 8; ++doc_trial) {
    auto db = testing_helpers::BuildTestDb(RandomDocument(&rng));
    query::SimpleEngine simple(db->client.get(), &db->map);
    query::AdvancedEngine advanced(db->client.get(), &db->map);

    for (int query_trial = 0; query_trial < 20; ++query_trial) {
      query::Query q = RandomQuery(&rng);
      auto truth = query::EvaluateGroundTruth(q, db->doc);
      ASSERT_TRUE(truth.ok()) << q.text;
      std::set<uint32_t> expected(truth->begin(), truth->end());
      if (!expected.empty()) ++non_trivial;

      for (query::QueryEngine* engine :
           {static_cast<query::QueryEngine*>(&simple),
            static_cast<query::QueryEngine*>(&advanced)}) {
        auto strict = engine->Execute(q, MatchMode::kEquality, nullptr);
        ASSERT_TRUE(strict.ok()) << q.text;
        std::set<uint32_t> actual;
        for (const auto& node : *strict) actual.insert(node.pre);
        EXPECT_EQ(actual, expected)
            << engine->name() << " strict diverged on " << q.text;

        auto loose = engine->Execute(q, MatchMode::kContainment, nullptr);
        ASSERT_TRUE(loose.ok()) << q.text;
        std::set<uint32_t> loose_set;
        for (const auto& node : *loose) loose_set.insert(node.pre);
        for (uint32_t pre : expected) {
          EXPECT_TRUE(loose_set.count(pre) > 0)
              << engine->name() << " non-strict lost " << pre << " on "
              << q.text;
        }
      }
    }
  }
  // The corpus must actually exercise matches, not just empty results.
  EXPECT_GT(non_trivial, 20);
}

TEST(FuzzTest, EncoderHandlesAdversarialShapes) {
  // Degenerate but legal documents: deep chains, wide fans, self-nesting.
  std::string deep;
  for (int i = 0; i < 60; ++i) deep += "<a>";
  for (int i = 0; i < 60; ++i) deep += "</a>";
  auto db1 = testing_helpers::BuildTestDb(deep);
  EXPECT_EQ(db1->encode_result.node_count, 60u);
  EXPECT_EQ(db1->encode_result.max_depth, 60u);
  // The root of a 60-deep chain of <a> contains a (with multiplicity 60):
  // reduction wraps the degree but evaluations survive.
  auto root = db1->client->Root();
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(*db1->client->ContainsValue(*root, *db1->map.Lookup("a")));
  EXPECT_EQ(*db1->client->RecoverOwnValue(*root), *db1->map.Lookup("a"));

  std::string wide = "<a>";
  for (int i = 0; i < 300; ++i) wide += "<b/>";
  wide += "</a>";
  auto db2 = testing_helpers::BuildTestDb(wide);
  EXPECT_EQ(db2->encode_result.node_count, 301u);
  auto root2 = db2->client->Root();
  ASSERT_TRUE(root2.ok());
  // Equality test with 300 children still recovers the root tag.
  EXPECT_EQ(*db2->client->RecoverOwnValue(*root2), *db2->map.Lookup("a"));
}

TEST(FuzzTest, QueryParserNeverCrashesOnGarbage) {
  Random rng(13);
  const char charset[] = "/abc*[].\"()， ";
  for (int trial = 0; trial < 500; ++trial) {
    std::string garbage;
    size_t len = rng.Uniform(24);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(charset[rng.Uniform(sizeof(charset) - 1)]);
    }
    // Must return a Status, never crash; parse success is fine too.
    auto parsed = query::ParseQuery(garbage);
    if (parsed.ok()) {
      EXPECT_FALSE(parsed->steps.empty());
    }
  }
}

TEST(FuzzTest, SaxParserNeverCrashesOnGarbage) {
  Random rng(17);
  const char charset[] = "<>ab/\"=' !&;-?[]";
  class NullHandler : public xml::SaxHandler {
   public:
    Status StartElement(std::string_view,
                        const xml::AttributeList&) override {
      return Status::OK();
    }
    Status EndElement(std::string_view) override { return Status::OK(); }
    Status Characters(std::string_view) override { return Status::OK(); }
  };
  for (int trial = 0; trial < 1000; ++trial) {
    std::string garbage;
    size_t len = rng.Uniform(64);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(charset[rng.Uniform(sizeof(charset) - 1)]);
    }
    NullHandler handler;
    xml::SaxParser parser;
    parser.Parse(garbage, &handler).ok();  // must not crash
  }
}

}  // namespace
}  // namespace ssdb
