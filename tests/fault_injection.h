// Reusable byzantine-server fault injection (DESIGN.md §9 test assets).
//
// TamperingServerFilter wraps one backend of a deployment and corrupts what
// it returns — the "one compromised host" adversary of DESIGN.md §5/§9 —
// configurable by fault kind, surface (evaluations, shares, aggregate
// partials), word offset, bit position, and firing probability (driven by a
// deterministic PRNG so failures replay). ByzantineChannel does the same at
// the transport layer, flipping frame bits on the wire.
//
// Shared by multi_server_test.cc (share/eval tampering caught by full
// verification), agg_test.cc (aggregate partial perturbation), and
// verified_agg_test.cc (the §9 tamper battery: every fault kind must be
// detected AND attributed to the wrapped server).

#ifndef SSDB_TESTS_FAULT_INJECTION_H_
#define SSDB_TESTS_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "filter/server_filter.h"
#include "gf/ring.h"
#include "rpc/channel.h"

namespace ssdb::testing_helpers {

// What the compromised server does to a reply it fires on.
enum class Fault {
  kNone,        // honest passthrough (the control arm)
  kAddOne,      // field/word increment — the classic lying-server tamper
  kBitFlip,     // XOR 1 << bit into the word at `offset`
  kWordSwap,    // swap the words at `offset` and `offset` + 1
  kStaleReplay, // answer with the previous reply to the same operation
  kGroupDrop,   // drop the last group from aggregate replies
  kProofOnly,   // corrupt only the §9 wide/proof track, words stay honest
};

struct FaultConfig {
  Fault fault = Fault::kNone;
  // Surfaces the fault applies to. Evaluation and share replies always use
  // field arithmetic (+1), whatever the fault kind says about words.
  bool on_eval = false;       // EvalAt / EvalAtBatch / EvalPointsBatch
  bool on_share = false;      // FetchShare / FetchShareBatch
  bool on_aggregate = false;  // PartialAggregate / PartialAggregateVerified
  size_t offset = 0;          // word/group index the fault targets
  uint32_t bit = 0;           // bit position for kBitFlip / kProofOnly
  double probability = 1.0;   // chance a reply is corrupted at all
  uint64_t rng_seed = 1;      // deterministic firing + replay decisions
};

// xorshift64: tiny deterministic PRNG for firing decisions (test code must
// replay bit-exactly; never use real randomness here).
class FaultRng {
 public:
  explicit FaultRng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  bool Fire(double probability) {
    if (probability >= 1.0) return true;
    if (probability <= 0.0) return false;
    return static_cast<double>(Next() >> 11) * 0x1.0p-53 < probability;
  }

 private:
  uint64_t state_;
};

// Delegating ServerFilter that corrupts selected replies of one backend.
class TamperingServerFilter : public filter::ServerFilter {
 public:
  TamperingServerFilter(const gf::Ring& ring, filter::ServerFilter* inner,
                        FaultConfig config)
      : ring_(ring),
        inner_(inner),
        config_(config),
        rng_(config.rng_seed) {}

  // Replies corrupted so far — tests assert the fault actually fired.
  uint64_t faults_injected() const { return faults_injected_; }
  FaultConfig& config() { return config_; }

  // --- honest structure plane (the adversary model leaves pre/post/parent
  // in the clear; DESIGN.md §3) ---
  StatusOr<filter::NodeMeta> Root() override { return inner_->Root(); }
  StatusOr<filter::NodeMeta> GetNode(uint32_t pre) override {
    return inner_->GetNode(pre);
  }
  StatusOr<std::vector<filter::NodeMeta>> Children(uint32_t pre) override {
    return inner_->Children(pre);
  }
  StatusOr<std::vector<std::vector<filter::NodeMeta>>> ChildrenBatch(
      const std::vector<uint32_t>& pres) override {
    return inner_->ChildrenBatch(pres);
  }
  StatusOr<uint64_t> OpenDescendantCursor(uint32_t pre,
                                          uint32_t post) override {
    return inner_->OpenDescendantCursor(pre, post);
  }
  StatusOr<std::vector<filter::NodeMeta>> NextNodes(
      uint64_t cursor, size_t max_batch) override {
    return inner_->NextNodes(cursor, max_batch);
  }
  Status CloseCursor(uint64_t cursor) override {
    return inner_->CloseCursor(cursor);
  }
  StatusOr<std::string> FetchSealed(uint32_t pre) override {
    return inner_->FetchSealed(pre);
  }
  StatusOr<uint64_t> NodeCount() override { return inner_->NodeCount(); }
  uint64_t RoundTrips() const override { return inner_->RoundTrips(); }

  // --- evaluation plane ---
  StatusOr<gf::Elem> EvalAt(uint32_t pre, gf::Elem t) override {
    SSDB_ASSIGN_OR_RETURN(gf::Elem value, inner_->EvalAt(pre, t));
    return MaybePerturbElem(value);
  }
  StatusOr<std::vector<gf::Elem>> EvalAtBatch(
      const std::vector<uint32_t>& pres, gf::Elem t) override {
    SSDB_ASSIGN_OR_RETURN(std::vector<gf::Elem> values,
                          inner_->EvalAtBatch(pres, t));
    for (gf::Elem& value : values) value = MaybePerturbElem(value);
    return values;
  }
  StatusOr<std::vector<gf::Elem>> EvalPointsBatch(
      uint32_t pre, const std::vector<gf::Elem>& points) override {
    SSDB_ASSIGN_OR_RETURN(std::vector<gf::Elem> values,
                          inner_->EvalPointsBatch(pre, points));
    for (gf::Elem& value : values) value = MaybePerturbElem(value);
    return values;
  }

  // --- share plane ---
  StatusOr<gf::RingElem> FetchShare(uint32_t pre) override {
    SSDB_ASSIGN_OR_RETURN(gf::RingElem share, inner_->FetchShare(pre));
    MaybePerturbShare(&share);
    return share;
  }
  StatusOr<std::vector<gf::RingElem>> FetchShareBatch(
      const std::vector<uint32_t>& pres) override {
    SSDB_ASSIGN_OR_RETURN(std::vector<gf::RingElem> shares,
                          inner_->FetchShareBatch(pres));
    for (gf::RingElem& share : shares) MaybePerturbShare(&share);
    return shares;
  }

  // --- aggregate plane (DESIGN.md §8/§9) ---
  StatusOr<std::vector<agg::Word>> PartialAggregate(
      const agg::Spec& spec) override {
    SSDB_ASSIGN_OR_RETURN(std::vector<agg::Word> partials,
                          inner_->PartialAggregate(spec));
    if (config_.on_aggregate && config_.fault == Fault::kStaleReplay) {
      if (last_plain_.has_value() && rng_.Fire(config_.probability)) {
        ++faults_injected_;
        return *last_plain_;
      }
      last_plain_ = partials;
      return partials;
    }
    if (config_.on_aggregate && rng_.Fire(config_.probability)) {
      ApplyWordFault(&partials);
    }
    return partials;
  }
  StatusOr<std::vector<agg::VerifiedPartial>> PartialAggregateVerified(
      const agg::Spec& spec) override {
    SSDB_ASSIGN_OR_RETURN(std::vector<agg::VerifiedPartial> partials,
                          inner_->PartialAggregateVerified(spec));
    if (!config_.on_aggregate) return partials;
    if (config_.fault == Fault::kStaleReplay) {
      if (last_verified_.has_value() && rng_.Fire(config_.probability)) {
        ++faults_injected_;
        return *last_verified_;
      }
      last_verified_ = partials;
      return partials;
    }
    if (!rng_.Fire(config_.probability)) return partials;
    for (agg::VerifiedPartial& partial : partials) {
      ApplyVerifiedFault(&partial);
    }
    return partials;
  }

 private:
  gf::Elem MaybePerturbElem(gf::Elem value) {
    if (config_.fault == Fault::kNone || !config_.on_eval ||
        !rng_.Fire(config_.probability)) {
      return value;
    }
    ++faults_injected_;
    return ring_.field().Add(value, 1);
  }
  void MaybePerturbShare(gf::RingElem* share) {
    if (config_.fault == Fault::kNone || !config_.on_share ||
        share->empty() || !rng_.Fire(config_.probability)) {
      return;
    }
    ++faults_injected_;
    size_t at = config_.offset % share->size();
    (*share)[at] = ring_.field().Add((*share)[at], 1);
  }
  void ApplyWordFault(std::vector<agg::Word>* words) {
    if (words->empty() || config_.fault == Fault::kNone ||
        config_.fault == Fault::kProofOnly) {
      return;
    }
    ++faults_injected_;
    size_t at = config_.offset % words->size();
    switch (config_.fault) {
      case Fault::kAddOne:
        for (agg::Word& word : *words) word += 1;
        break;
      case Fault::kBitFlip:
        (*words)[at] ^= agg::Word{1} << (config_.bit % 32);
        break;
      case Fault::kWordSwap:
        if (words->size() > 1) {
          std::swap((*words)[at], (*words)[(at + 1) % words->size()]);
        } else {
          (*words)[at] += 1;  // degenerate swap still tampers
        }
        break;
      case Fault::kGroupDrop:
        words->pop_back();
        break;
      default:
        break;
    }
  }
  void ApplyVerifiedFault(agg::VerifiedPartial* partial) {
    if (config_.fault == Fault::kProofOnly) {
      // Words stay honest; only the §9 track is corrupted. A no-op on
      // slices that carry no track (they have nothing to corrupt).
      if (partial->proof.empty()) return;
      ++faults_injected_;
      size_t at = config_.offset % partial->proof.size();
      partial->proof[at] ^= uint64_t{1} << (config_.bit % 64);
      return;
    }
    if (config_.fault == Fault::kGroupDrop) {
      if (partial->words.empty()) return;
      ++faults_injected_;
      partial->words.pop_back();
      if (!partial->wide.empty()) {
        partial->wide.pop_back();
        partial->proof.pop_back();
      }
      return;
    }
    ApplyWordFault(&partial->words);
  }

  const gf::Ring& ring_;
  filter::ServerFilter* inner_;
  FaultConfig config_;
  FaultRng rng_;
  uint64_t faults_injected_ = 0;
  std::optional<std::vector<agg::Word>> last_plain_;
  std::optional<std::vector<agg::VerifiedPartial>> last_verified_;
};

// Channel wrapper that flips frame bits on receive — byzantine behaviour at
// the transport layer, below the RPC codec. Whatever lands must surface as
// a decode error or a verification failure, never a silently wrong answer.
class ByzantineChannel : public rpc::Channel {
 public:
  ByzantineChannel(std::unique_ptr<rpc::Channel> inner, double probability,
                   uint64_t rng_seed)
      : inner_(std::move(inner)), probability_(probability), rng_(rng_seed) {}

  uint64_t corruptions() const { return corruptions_; }

  Status Send(std::string_view message) override {
    return inner_->Send(message);
  }
  StatusOr<std::string> Receive() override {
    SSDB_ASSIGN_OR_RETURN(std::string message, inner_->Receive());
    if (!message.empty() && rng_.Fire(probability_)) {
      ++corruptions_;
      uint64_t r = rng_.Next();
      message[r % message.size()] ^=
          static_cast<char>(1u << ((r >> 32) % 8));
    }
    return message;
  }
  void Close() override { inner_->Close(); }
  uint64_t bytes_sent() const override { return inner_->bytes_sent(); }
  uint64_t bytes_received() const override {
    return inner_->bytes_received();
  }
  uint64_t messages_sent() const override { return inner_->messages_sent(); }

 private:
  std::unique_ptr<rpc::Channel> inner_;
  double probability_;
  FaultRng rng_;
  uint64_t corruptions_ = 0;
};

}  // namespace ssdb::testing_helpers

#endif  // SSDB_TESTS_FAULT_INJECTION_H_
