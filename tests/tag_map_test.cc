#include <gtest/gtest.h>

#include "mapping/tag_map.h"
#include "util/file_util.h"
#include "xmark/generator.h"

namespace ssdb::mapping {
namespace {

class TagMapTest : public ::testing::Test {
 protected:
  TagMapTest() : field_(*gf::Field::Make(83)) {}
  gf::Field field_;
};

TEST_F(TagMapTest, ValueIndexRanksMappedValues) {
  // Unordered values: index is the rank among values, not insertion order.
  auto map = TagMap::FromString("x = 40\ny = 7\nz = 19\n", field_);
  ASSERT_TRUE(map.ok());
  ASSERT_EQ(map->values_in_order().size(), 3u);
  EXPECT_EQ(map->values_in_order()[0], 7u);
  EXPECT_EQ(*map->ValueIndex(7), 0u);
  EXPECT_EQ(*map->ValueIndex(19), 1u);
  EXPECT_EQ(*map->ValueIndex(40), 2u);
  EXPECT_FALSE(map->ValueIndex(8).ok());
  EXPECT_EQ(*map->NameAt(0), "y");
  EXPECT_EQ(*map->NameAt(2), "x");
  EXPECT_FALSE(map->NameAt(3).ok());
}

TEST_F(TagMapTest, FromNamesAssignsSequentialNonzeroValues) {
  auto map = TagMap::FromNames({"a", "b", "c"}, field_);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(*map->Lookup("a"), 1u);
  EXPECT_EQ(*map->Lookup("b"), 2u);
  EXPECT_EQ(*map->Lookup("c"), 3u);
  EXPECT_TRUE(map->Contains("b"));
  EXPECT_FALSE(map->Contains("z"));
  EXPECT_FALSE(map->Lookup("z").ok());
  EXPECT_EQ(map->SpareValue(), 4u);
}

TEST_F(TagMapTest, RejectsDuplicateNames) {
  EXPECT_FALSE(TagMap::FromNames({"a", "a"}, field_).ok());
}

TEST_F(TagMapTest, RequiresSpareValue) {
  // F_5 has 4 non-zero values; 4 tags leave no spare -> rejected.
  auto f5 = *gf::Field::Make(5);
  EXPECT_FALSE(TagMap::FromNames({"a", "b", "c", "d"}, f5).ok());
  EXPECT_TRUE(TagMap::FromNames({"a", "b", "c"}, f5).ok());
}

TEST_F(TagMapTest, PaperDtdFitsInF83) {
  // 77 elements, 82 non-zero values: fits with spares — the paper's choice.
  auto dtd = xml::ParseDtd(xmark::AuctionDtd());
  ASSERT_TRUE(dtd.ok());
  auto map = TagMap::FromDtd(*dtd, field_);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->size(), 77u);
  EXPECT_NE(map->SpareValue(), 0u);
}

TEST_F(TagMapTest, FileFormatRoundTrip) {
  TempDir dir("tag_map_test");
  auto map = TagMap::FromNames({"site", "person", "city"}, field_);
  ASSERT_TRUE(map.ok());
  std::string path = dir.FilePath("map.properties");
  ASSERT_TRUE(map->SaveToFile(path).ok());
  auto loaded = TagMap::FromFile(path, field_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->entries(), map->entries());
}

TEST_F(TagMapTest, ParsesPropertyFormatWithComments) {
  auto map = TagMap::FromString(
      "# comment\n"
      "  site = 10  \n"
      "\n"
      "person=20\n",
      field_);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(*map->Lookup("site"), 10u);
  EXPECT_EQ(*map->Lookup("person"), 20u);
}

TEST_F(TagMapTest, RejectsInvalidFiles) {
  EXPECT_FALSE(TagMap::FromString("site 10", field_).ok());       // no '='
  EXPECT_FALSE(TagMap::FromString("site = zero", field_).ok());   // NaN
  EXPECT_FALSE(TagMap::FromString("site = 0", field_).ok());      // zero
  EXPECT_FALSE(TagMap::FromString("site = 83", field_).ok());     // >= q
  EXPECT_FALSE(
      TagMap::FromString("a = 5\nb = 5", field_).ok());           // dup value
  EXPECT_FALSE(
      TagMap::FromString("a = 5\na = 6", field_).ok());           // dup name
  EXPECT_FALSE(TagMap::FromString("", field_).ok());              // empty
}

}  // namespace
}  // namespace ssdb::mapping
