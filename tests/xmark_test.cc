#include <gtest/gtest.h>

#include <set>

#include "xmark/generator.h"
#include "xmark/words.h"
#include "xml/dom.h"
#include "xml/dtd.h"

namespace ssdb::xmark {
namespace {

TEST(WordsTest, PoolsAreNonEmptyAndStable) {
  EXPECT_GT(Vocabulary().size(), 150u);
  EXPECT_GE(FirstNames().size(), 30u);
  EXPECT_GE(LastNames().size(), 30u);
  EXPECT_FALSE(Cities().empty());
  // Joan Johnson — the paper's fig. 2 running example — must be reachable.
  bool has_joan = false, has_johnson = false;
  for (const auto& n : FirstNames()) has_joan |= (n == "Joan");
  for (const auto& n : LastNames()) has_johnson |= (n == "Johnson");
  EXPECT_TRUE(has_joan);
  EXPECT_TRUE(has_johnson);
}

TEST(WordsTest, SentencesAreDeterministic) {
  Random r1(5), r2(5);
  EXPECT_EQ(MakeSentence(&r1, 10), MakeSentence(&r2, 10));
}

TEST(GeneratorTest, OutputIsWellFormedXml) {
  GeneratorOptions options;
  options.target_bytes = 50 << 10;
  auto generated = GenerateAuctionDocument(options);
  auto doc = xml::ParseDocument(generated.xml);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->root()->name, "site");
}

TEST(GeneratorTest, UsesOnlyDtdElements) {
  auto dtd = xml::ParseDtd(AuctionDtd());
  ASSERT_TRUE(dtd.ok());
  GeneratorOptions options;
  options.target_bytes = 50 << 10;
  auto generated = GenerateAuctionDocument(options);
  auto doc = xml::ParseDocument(generated.xml);
  ASSERT_TRUE(doc.ok());
  std::set<std::string> used;
  xml::ForEachElement(doc->root(), [&](const xml::Node& node) {
    used.insert(node.name);
  });
  for (const auto& name : used) {
    EXPECT_TRUE(dtd->HasElement(name)) << name;
  }
  // Structure should be rich: a good share of the DTD in use.
  EXPECT_GT(used.size(), 40u);
}

TEST(GeneratorTest, RespectsDtdStructureSpotChecks) {
  GeneratorOptions options;
  options.target_bytes = 30 << 10;
  auto generated = GenerateAuctionDocument(options);
  auto doc = xml::ParseDocument(generated.xml);
  ASSERT_TRUE(doc.ok());
  // site has exactly the six DTD children in order.
  const xml::Node* site = doc->root();
  ASSERT_EQ(site->children.size(), 6u);
  EXPECT_EQ(site->children[0]->name, "regions");
  EXPECT_EQ(site->children[1]->name, "categories");
  EXPECT_EQ(site->children[2]->name, "catgraph");
  EXPECT_EQ(site->children[3]->name, "people");
  EXPECT_EQ(site->children[4]->name, "open_auctions");
  EXPECT_EQ(site->children[5]->name, "closed_auctions");
  // regions has all six continents.
  EXPECT_EQ(site->children[0]->children.size(), 6u);
  // every person starts with name, emailaddress.
  for (const auto& person : site->children[3]->children) {
    ASSERT_GE(person->children.size(), 2u);
    EXPECT_EQ(person->children[0]->name, "name");
    EXPECT_EQ(person->children[1]->name, "emailaddress");
  }
}

TEST(GeneratorTest, DeterministicPerSeed) {
  GeneratorOptions options;
  options.target_bytes = 20 << 10;
  options.seed = 11;
  auto a = GenerateAuctionDocument(options);
  auto b = GenerateAuctionDocument(options);
  EXPECT_EQ(a.xml, b.xml);
  options.seed = 12;
  auto c = GenerateAuctionDocument(options);
  EXPECT_NE(a.xml, c.xml);
}

TEST(GeneratorTest, SizeCalibrationWithinTolerance) {
  for (uint64_t target : {64ull << 10, 256ull << 10, 1ull << 20}) {
    GeneratorOptions options;
    options.target_bytes = target;
    auto generated = GenerateAuctionDocument(options);
    double ratio = static_cast<double>(generated.xml.size()) /
                   static_cast<double>(target);
    EXPECT_GT(ratio, 0.6) << "target " << target;
    EXPECT_LT(ratio, 1.6) << "target " << target;
  }
}

TEST(GeneratorTest, ScalesLinearly) {
  GeneratorOptions small, large;
  small.target_bytes = 100 << 10;
  large.target_bytes = 400 << 10;
  auto s = GenerateAuctionDocument(small);
  auto l = GenerateAuctionDocument(large);
  double ratio = static_cast<double>(l.xml.size()) /
                 static_cast<double>(s.xml.size());
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.5);
  EXPECT_GT(l.person_count, s.person_count * 3);
}

}  // namespace
}  // namespace ssdb::xmark
