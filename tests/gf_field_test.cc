#include <gtest/gtest.h>

#include "gf/field.h"
#include "gf/irreducible.h"
#include "gf/modular.h"
#include "gf/prime.h"

namespace ssdb::gf {
namespace {

TEST(ModularTest, Basics) {
  EXPECT_EQ(AddMod(80, 5, 83), 2u);
  EXPECT_EQ(SubMod(2, 5, 83), 80u);
  EXPECT_EQ(MulMod(82, 82, 83), 1u);  // (-1)^2
  EXPECT_EQ(PowMod(2, 82, 83), 1u);   // Fermat
  EXPECT_EQ(MulMod(InvMod(7, 83), 7, 83), 1u);
  EXPECT_EQ(InvMod(6, 12), 0u);  // not invertible
  EXPECT_EQ(Gcd(48, 36), 12u);
}

TEST(PrimeTest, KnownPrimes) {
  EXPECT_TRUE(IsPrime(2));
  EXPECT_TRUE(IsPrime(29));
  EXPECT_TRUE(IsPrime(83));
  EXPECT_TRUE(IsPrime((1ull << 31) - 1));  // Mersenne prime
  EXPECT_FALSE(IsPrime(1));
  EXPECT_FALSE(IsPrime(91));   // 7*13
  EXPECT_FALSE(IsPrime(561));  // Carmichael
  EXPECT_EQ(NextPrime(84), 89u);
  EXPECT_EQ(DistinctPrimeFactors(82), (std::vector<uint64_t>{2, 41}));
}

TEST(IrreducibleTest, DegreeOneAlwaysIrreducible) {
  EXPECT_TRUE(IsIrreducible({1, 1}, 5));
  EXPECT_TRUE(IsIrreducible({3, 1}, 5));
}

TEST(IrreducibleTest, KnownReducible) {
  // x^2 - 1 = (x-1)(x+1) over F_5.
  EXPECT_FALSE(IsIrreducible({4, 0, 1}, 5));
  // x^2 + 1 factors over F_5 (2^2 = 4 = -1).
  EXPECT_FALSE(IsIrreducible({1, 0, 1}, 5));
  // x^2 + 2 is irreducible over F_5 (no square root of -2 = 3).
  EXPECT_TRUE(IsIrreducible({2, 0, 1}, 5));
}

TEST(IrreducibleTest, FindIrreducibleProducesIrreducible) {
  for (uint32_t p : {2u, 3u, 5u, 7u}) {
    for (uint32_t e : {2u, 3u, 4u}) {
      auto f = FindIrreducible(p, e);
      ASSERT_TRUE(f.ok()) << "p=" << p << " e=" << e;
      EXPECT_EQ(f->size(), e + 1);
      EXPECT_EQ(f->back(), 1u);
      EXPECT_TRUE(IsIrreducible(*f, p)) << "p=" << p << " e=" << e;
    }
  }
}

TEST(FieldTest, RejectsBadParameters) {
  EXPECT_FALSE(Field::Make(4).ok());        // not prime
  EXPECT_FALSE(Field::Make(2, 0).ok());     // e < 1
  EXPECT_FALSE(Field::Make(2, 17).ok());    // q > 2^16
  EXPECT_FALSE(Field::Make(2, 1).ok());     // q = 2: F_q* trivial
}

TEST(FieldTest, PaperParameters) {
  auto field = Field::Make(83);
  ASSERT_TRUE(field.ok());
  EXPECT_EQ(field->q(), 83u);
  EXPECT_EQ(field->n(), 82u);
  EXPECT_EQ(field->bit_width(), 7);
}

// Field axioms over several (p, e), including extension fields.
class FieldAxiomsTest
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>> {};

TEST_P(FieldAxiomsTest, AxiomsHold) {
  auto [p, e] = GetParam();
  auto field_or = Field::Make(p, e);
  ASSERT_TRUE(field_or.ok());
  const Field& f = *field_or;
  const uint32_t q = f.q();

  // Additive group: associativity/commutativity/identity/inverse (sampled
  // exhaustively for small q).
  for (Elem a = 0; a < q; ++a) {
    EXPECT_EQ(f.Add(a, 0), a);
    EXPECT_EQ(f.Add(a, f.Neg(a)), 0u);
    EXPECT_EQ(f.Mul(a, 1), a);
    EXPECT_EQ(f.Mul(a, 0), 0u);
    if (a != 0) {
      EXPECT_EQ(f.Mul(a, f.Inv(a)), 1u) << "a=" << a;
    }
  }
  for (Elem a = 0; a < q; ++a) {
    for (Elem b = 0; b < q; ++b) {
      EXPECT_EQ(f.Add(a, b), f.Add(b, a));
      EXPECT_EQ(f.Mul(a, b), f.Mul(b, a));
      EXPECT_EQ(f.Sub(a, b), f.Add(a, f.Neg(b)));
    }
  }
  // Distributivity on a sample grid.
  for (Elem a = 0; a < q; a += 3) {
    for (Elem b = 0; b < q; b += 5) {
      for (Elem c = 0; c < q; c += 7) {
        EXPECT_EQ(f.Mul(a, f.Add(b, c)),
                  f.Add(f.Mul(a, b), f.Mul(a, c)));
      }
    }
  }
}

TEST_P(FieldAxiomsTest, GeneratorHasFullOrder) {
  auto [p, e] = GetParam();
  auto field_or = Field::Make(p, e);
  ASSERT_TRUE(field_or.ok());
  const Field& f = *field_or;
  // g^i for i in [0, q-1) hits every non-zero element exactly once.
  std::vector<bool> seen(f.q(), false);
  Elem acc = 1;
  for (uint32_t i = 0; i < f.n(); ++i) {
    EXPECT_FALSE(seen[acc]);
    seen[acc] = true;
    EXPECT_EQ(f.GeneratorPow(i), acc);
    acc = f.Mul(acc, f.generator());
  }
  EXPECT_EQ(acc, 1u);
  for (Elem a = 1; a < f.q(); ++a) EXPECT_TRUE(seen[a]);
}

TEST_P(FieldAxiomsTest, PowAndLogAgree) {
  auto [p, e] = GetParam();
  auto field_or = Field::Make(p, e);
  ASSERT_TRUE(field_or.ok());
  const Field& f = *field_or;
  for (Elem a = 1; a < f.q(); ++a) {
    EXPECT_EQ(f.GeneratorPow(f.Log(a)), a);
    EXPECT_EQ(f.Pow(a, f.n()), 1u);  // Lagrange
    EXPECT_EQ(f.Pow(a, 2), f.Mul(a, a));
  }
  EXPECT_EQ(f.Pow(0, 5), 0u);
  EXPECT_EQ(f.Pow(0, 0), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Fields, FieldAxiomsTest,
    ::testing::Values(std::make_pair(5u, 1u), std::make_pair(29u, 1u),
                      std::make_pair(83u, 1u), std::make_pair(2u, 4u),
                      std::make_pair(3u, 2u), std::make_pair(7u, 2u)),
    [](const auto& info) {
      return "p" + std::to_string(info.param.first) + "e" +
             std::to_string(info.param.second);
    });

TEST(FieldTest, DigitsRoundTrip) {
  auto field = Field::Make(3, 2);
  ASSERT_TRUE(field.ok());
  for (Elem a = 0; a < field->q(); ++a) {
    auto digits = field->Digits(a);
    EXPECT_EQ(digits.size(), 2u);
    EXPECT_EQ(field->FromDigits(digits), a);
  }
}

TEST(FieldTest, ExtensionAdditionIsDigitwise) {
  auto field = Field::Make(3, 2);
  ASSERT_TRUE(field.ok());
  // (1 + 2z) + (2 + 2z) = (0 + z): codes 1+2*3=7, 2+2*3=8 -> 0+1*3=3.
  EXPECT_EQ(field->Add(7, 8), 3u);
}

TEST(FieldTest, CopiesShareTables) {
  auto field = Field::Make(83);
  ASSERT_TRUE(field.ok());
  Field copy = *field;
  EXPECT_EQ(copy.Mul(5, 17), field->Mul(5, 17));
  EXPECT_TRUE(copy == *field);
}

}  // namespace
}  // namespace ssdb::gf
