#include <gtest/gtest.h>

#include "gf/poly.h"
#include "gf/share.h"
#include "test_helpers.h"
#include "xmark/generator.h"

namespace ssdb::encode {
namespace {

using testing_helpers::BuildTestDb;
using testing_helpers::SmallAuctionXml;

// Recomputes a node's true (reduced) polynomial from the DOM, bottom-up.
gf::RingElem TruePoly(const gf::Ring& ring, const mapping::TagMap& map,
                      const xml::Node& node) {
  gf::RingElem poly = ring.XMinus(*map.Lookup(node.name));
  for (const auto& child : node.children) {
    if (!child->IsElement()) continue;
    poly = ring.Mul(poly, TruePoly(ring, map, *child));
  }
  return poly;
}

void CheckNode(const testing_helpers::TestDb& db, const xml::Node& node) {
  auto row = db.store->GetByPre(node.pre);
  ASSERT_TRUE(row.ok()) << "pre=" << node.pre;
  EXPECT_EQ(row->post, node.post);
  EXPECT_EQ(row->parent, node.parent_pre);
  // client share (PRG) + stored server share == true polynomial.
  prg::Prg prg(db.seed);
  gf::RingElem client = prg.ClientShare(db.ring, node.pre);
  auto server = db.ring.Deserialize(row->share);
  ASSERT_TRUE(server.ok());
  EXPECT_EQ(gf::Combine(db.ring, client, *server),
            TruePoly(db.ring, db.map, node))
      << "node " << node.name << " pre=" << node.pre;
  for (const auto& child : node.children) {
    if (child->IsElement()) CheckNode(db, *child);
  }
}

TEST(EncoderTest, PrePostParentAndSharesMatchDom) {
  auto db = BuildTestDb(SmallAuctionXml());
  EXPECT_EQ(db->encode_result.node_count, db->doc.ElementCount());
  CheckNode(*db, *db->doc.root());
}

TEST(EncoderTest, EvalAndCoefficientDomainsAgree) {
  // Ablation A1: both encode paths must produce identical stores.
  std::string xml = SmallAuctionXml();
  auto field = *gf::Field::Make(83);
  auto doc = *xml::ParseDocument(xml);
  auto map = *mapping::TagMap::FromNames(
      testing_helpers::CollectNames(doc), field);
  gf::Ring ring(field);
  prg::Seed seed = prg::Seed::FromUint64(3);

  storage::MemoryNodeStore store_eval, store_coeff;
  EncodeOptions eval_options;
  eval_options.use_eval_domain = true;
  EncodeOptions coeff_options;
  coeff_options.use_eval_domain = false;

  Encoder encoder_eval(ring, map, prg::Prg(seed), &store_eval, eval_options);
  Encoder encoder_coeff(ring, map, prg::Prg(seed), &store_coeff,
                        coeff_options);
  auto r1 = encoder_eval.EncodeString(xml);
  auto r2 = encoder_coeff.EncodeString(xml);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1->node_count, r2->node_count);
  for (uint32_t pre = 1; pre <= r1->node_count; ++pre) {
    auto a = store_eval.GetByPre(pre);
    auto b = store_coeff.GetByPre(pre);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b) << "pre=" << pre;
  }
}

TEST(EncoderTest, FailsOnUnmappedTag) {
  auto field = *gf::Field::Make(83);
  auto map = *mapping::TagMap::FromNames({"a"}, field);
  gf::Ring ring(field);
  storage::MemoryNodeStore store;
  Encoder encoder(ring, map, prg::Prg(prg::Seed::FromUint64(1)), &store);
  EXPECT_FALSE(encoder.EncodeString("<a><unmapped/></a>").ok());
}

TEST(EncoderTest, FailsOnNonEmptyStore) {
  auto field = *gf::Field::Make(83);
  auto map = *mapping::TagMap::FromNames({"a"}, field);
  gf::Ring ring(field);
  storage::MemoryNodeStore store;
  Encoder encoder(ring, map, prg::Prg(prg::Seed::FromUint64(1)), &store);
  ASSERT_TRUE(encoder.EncodeString("<a/>").ok());
  EXPECT_FALSE(encoder.EncodeString("<a/>").ok());
}

TEST(EncoderTest, TrieModeEncodesTextAsNodes) {
  std::string xml = "<name>Jo</name>";
  // Non-trie: 1 node. Trie: name + j + o + _end_ = 4 nodes.
  auto plain = BuildTestDb(xml);
  EXPECT_EQ(plain->encode_result.node_count, 1u);
  auto trie_db = BuildTestDb(xml, 83, /*trie=*/true);
  EXPECT_EQ(trie_db->encode_result.node_count, 4u);
  // Numbering still matches the (transformed) DOM.
  CheckNode(*trie_db, *trie_db->doc.root());
}

TEST(EncoderTest, ShareBytesMatchRingSize) {
  auto db = BuildTestDb(SmallAuctionXml());
  EXPECT_EQ(db->encode_result.share_bytes,
            db->encode_result.node_count * db->ring.serialized_bytes());
}

TEST(EncoderTest, SealedPayloadsRoundTrip) {
  // §4 extension: name + direct text sealed under the seed, opaque to the
  // server, revealed exactly by the client.
  auto field = *gf::Field::Make(83);
  auto map = *mapping::TagMap::FromNames({"person", "name", "age"}, field);
  gf::Ring ring(field);
  prg::Seed seed = prg::Seed::FromUint64(55);
  storage::MemoryNodeStore store;
  EncodeOptions options;
  options.seal_content = true;
  Encoder encoder(ring, map, prg::Prg(seed), &store, options);
  ASSERT_TRUE(
      encoder
          .EncodeString(
              "<person><name>Joan Johnson</name><age>30</age></person>")
          .ok());

  // Server-visible bytes must not contain the plaintext.
  auto row = store.GetByPre(2);
  ASSERT_TRUE(row.ok());
  EXPECT_FALSE(row->sealed.empty());
  EXPECT_EQ(row->sealed.find("Joan"), std::string::npos);
  EXPECT_EQ(row->sealed.find("name"), std::string::npos);

  filter::LocalServerFilter server(ring, &store);
  filter::ClientFilter client(ring, prg::Prg(seed), &server);
  auto node = client.GetNode(2);
  ASSERT_TRUE(node.ok());
  auto revealed = client.Reveal(*node);
  ASSERT_TRUE(revealed.ok()) << revealed.status().ToString();
  EXPECT_EQ(revealed->name, "name");
  EXPECT_EQ(revealed->text, "Joan Johnson");

  auto root_revealed = client.Reveal(*client.Root());
  ASSERT_TRUE(root_revealed.ok());
  EXPECT_EQ(root_revealed->name, "person");
  EXPECT_EQ(root_revealed->text, "");

  // A wrong seed yields garbage, not the plaintext.
  filter::ClientFilter wrong(ring, prg::Prg(prg::Seed::FromUint64(56)),
                             &server);
  auto garbage = wrong.Reveal(*node);
  if (garbage.ok()) {
    EXPECT_NE(garbage->text, "Joan Johnson");
  }
}

TEST(EncoderTest, UnsealedDatabaseRefusesReveal) {
  auto db = BuildTestDb(SmallAuctionXml());
  auto root = db->client->Root();
  ASSERT_TRUE(root.ok());
  auto revealed = db->client->Reveal(*root);
  EXPECT_FALSE(revealed.ok());
  EXPECT_EQ(revealed.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EncoderTest, XmarkDocumentEncodesCleanly) {
  xmark::GeneratorOptions options;
  options.target_bytes = 40 << 10;
  auto generated = xmark::GenerateAuctionDocument(options);
  auto db = BuildTestDb(generated.xml);
  EXPECT_EQ(db->encode_result.node_count, db->doc.ElementCount());
  EXPECT_GT(db->encode_result.node_count, 100u);
  // Spot-check a person node's share reconstructs.
  CheckNode(*db, *db->doc.root()->children[0]);
}

}  // namespace
}  // namespace ssdb::encode
