// Failure injection: corrupted pages, tampered shares, truncated files,
// malformed RPC frames, wrong key material. The system must degrade into
// clean Status errors (or detectable inconsistency), never undefined
// behaviour or silent wrong answers in strict mode.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "query/simple_engine.h"
#include "rpc/protocol.h"
#include "rpc/server.h"
#include "storage/table.h"
#include "test_helpers.h"
#include "util/file_util.h"

namespace ssdb {
namespace {

using testing_helpers::BuildTestDb;
using testing_helpers::SmallAuctionXml;

TEST(FailureTest, CorruptedPageIsDetectedByChecksum) {
  TempDir dir("fail_page");
  std::string path = dir.FilePath("db");
  {
    auto store = storage::DiskNodeStore::Create(path);
    ASSERT_TRUE(store.ok());
    for (uint32_t i = 1; i <= 200; ++i) {
      ASSERT_TRUE(
          (*store)
              ->Insert({i, i, i == 1 ? 0 : 1, std::string(70, 'x')})
              .ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  // Flip a byte in the middle of a data page (skip the meta page).
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(storage::kPageSize) + 600);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(static_cast<std::streamoff>(storage::kPageSize) + 600);
    byte = static_cast<char>(byte ^ 0xff);
    f.write(&byte, 1);
  }
  // Depending on which structure owns the flipped page (catalog, index or
  // heap), either opening the store or reading some row must surface a
  // checksum Corruption — never a silent wrong answer.
  auto store = storage::DiskNodeStore::Open(path);
  if (!store.ok()) {
    EXPECT_TRUE(store.status().IsCorruption()) << store.status().ToString();
    return;
  }
  bool saw_corruption = false;
  for (uint32_t i = 1; i <= 200; ++i) {
    auto row = (*store)->GetByPre(i);
    if (!row.ok()) {
      EXPECT_TRUE(row.status().IsCorruption()) << row.status().ToString();
      saw_corruption = true;
      break;
    }
  }
  EXPECT_TRUE(saw_corruption);
}

TEST(FailureTest, TruncatedFileIsRejected) {
  TempDir dir("fail_trunc");
  std::string path = dir.FilePath("db");
  {
    auto store = storage::DiskNodeStore::Create(path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Insert({1, 1, 0, "x"}).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  // Chop the file to a non-page-multiple size.
  std::filesystem::resize_file(path, *size - 100);
  EXPECT_FALSE(storage::DiskNodeStore::Open(path).ok());
}

TEST(FailureTest, NotADatabaseFileIsRejected) {
  TempDir dir("fail_magic");
  std::string path = dir.FilePath("db");
  ASSERT_TRUE(
      WriteStringToFile(path, std::string(2 * storage::kPageSize, 'z'))
          .ok());
  EXPECT_FALSE(storage::DiskNodeStore::Open(path).ok());
}

TEST(FailureTest, TamperedShareFailsEqualityVerification) {
  auto db = BuildTestDb(SmallAuctionXml());
  db->client->set_full_verification(true);

  // Tamper: replace node 2's share with node 3's (both valid encodings).
  auto row2 = db->store->GetByPre(2);
  auto row3 = db->store->GetByPre(3);
  ASSERT_TRUE(row2.ok() && row3.ok());
  storage::MemoryNodeStore tampered;
  uint64_t n = *db->store->NodeCount();
  for (uint32_t pre = 1; pre <= n; ++pre) {
    auto row = *db->store->GetByPre(pre);
    if (pre == 2) row.share = row3->share;
    ASSERT_TRUE(tampered.Insert(row).ok());
  }
  filter::LocalServerFilter server(db->ring, &tampered);
  filter::ClientFilter client(db->ring, prg::Prg(db->seed), &server);
  client.set_full_verification(true);

  auto node = client.GetNode(2);
  ASSERT_TRUE(node.ok());
  // The recovered "own value" comes from an inconsistent polynomial; the
  // division check must flag it (node 2 has children in this document).
  auto own = client.RecoverOwnValue(*node);
  EXPECT_FALSE(own.ok());
  EXPECT_TRUE(own.status().IsCorruption()) << own.status().ToString();
}

TEST(FailureTest, MalformedRpcRequestsGetErrorResponses) {
  auto db = BuildTestDb(SmallAuctionXml());
  rpc::RpcServer server(db->ring, db->server.get());
  // Empty request, unknown op, truncated fields: all must produce error
  // envelopes, never crashes.
  for (std::string bad : {std::string(), std::string("\x63"),
                          std::string("\x02"), std::string("\x07\x01")}) {
    std::string response = server.HandleRequest(bad);
    auto decoded = rpc::DecodeResponse(response);
    EXPECT_FALSE(decoded.ok());
  }
  // A well-formed request for a missing node: transported NotFound.
  rpc::Request request;
  request.op = rpc::Op::kGetNode;
  request.pre = 424242;
  auto decoded = rpc::DecodeResponse(
      server.HandleRequest(rpc::EncodeRequest(request)));
  EXPECT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsNotFound());
}

TEST(FailureTest, WrongMapGivesCleanEmptyResults) {
  // Querying with a permuted tag map must not crash; in strict mode the
  // equality test simply never matches the wrong values.
  auto db = BuildTestDb(SmallAuctionXml());
  std::vector<std::string> names;
  for (const auto& [name, value] : db->map.entries()) names.push_back(name);
  std::rotate(names.begin(), names.begin() + 1, names.end());
  auto wrong_map = mapping::TagMap::FromNames(names, db->field);
  ASSERT_TRUE(wrong_map.ok());

  query::SimpleEngine engine(db->client.get(), &*wrong_map);
  auto parsed = query::ParseQuery("/site/people/person");
  ASSERT_TRUE(parsed.ok());
  auto result = engine.Execute(*parsed, query::MatchMode::kEquality,
                               nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(FailureTest, ShareDeserializationRejectsWrongLength) {
  auto field = *gf::Field::Make(83);
  gf::Ring ring(field);
  EXPECT_FALSE(ring.Deserialize("short").ok());
  std::string valid(ring.serialized_bytes(), '\0');
  EXPECT_TRUE(ring.Deserialize(valid).ok());
}

TEST(FailureTest, OutOfRangeQueriesAndCursors) {
  auto db = BuildTestDb(SmallAuctionXml());
  EXPECT_FALSE(db->server->EvalAt(99999, 5).ok());
  EXPECT_FALSE(db->server->FetchShare(99999).ok());
  EXPECT_FALSE(db->server->NextNodes(31337, 8).ok());
}

}  // namespace
}  // namespace ssdb
