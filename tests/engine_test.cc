#include <gtest/gtest.h>

#include <set>

#include "query/advanced_engine.h"
#include "query/ground_truth.h"
#include "query/simple_engine.h"
#include "test_helpers.h"
#include "xmark/generator.h"

namespace ssdb::query {
namespace {

using testing_helpers::BuildTestDb;
using testing_helpers::SmallAuctionXml;
using testing_helpers::TestDb;

std::set<uint32_t> PreSet(const std::vector<filter::NodeMeta>& nodes) {
  std::set<uint32_t> out;
  for (const auto& node : nodes) out.insert(node.pre);
  return out;
}

std::set<uint32_t> PreSet(const std::vector<uint32_t>& pres) {
  return {pres.begin(), pres.end()};
}

struct Engines {
  SimpleEngine simple;
  AdvancedEngine advanced;
  explicit Engines(TestDb* db)
      : simple(db->client.get(), &db->map),
        advanced(db->client.get(), &db->map) {}
};

// Core correctness property over a corpus of queries:
//  * strict (equality) results == plaintext ground truth, both engines;
//  * non-strict (containment) results are a superset of ground truth.
void CheckQueryCorpus(TestDb* db, const std::vector<std::string>& queries) {
  Engines engines(db);
  for (const std::string& text : queries) {
    auto parsed = ParseQuery(text);
    ASSERT_TRUE(parsed.ok()) << text;
    auto truth = EvaluateGroundTruth(*parsed, db->doc);
    ASSERT_TRUE(truth.ok()) << text;
    std::set<uint32_t> expected = PreSet(*truth);

    for (QueryEngine* engine :
         {static_cast<QueryEngine*>(&engines.simple),
          static_cast<QueryEngine*>(&engines.advanced)}) {
      QueryStats strict_stats;
      auto strict = engine->Execute(*parsed, MatchMode::kEquality,
                                    &strict_stats);
      ASSERT_TRUE(strict.ok()) << engine->name() << " " << text;
      EXPECT_EQ(PreSet(*strict), expected)
          << engine->name() << " strict mismatch on " << text;
      EXPECT_EQ(strict_stats.result_size, strict->size());

      auto loose = engine->Execute(*parsed, MatchMode::kContainment,
                                   nullptr);
      ASSERT_TRUE(loose.ok()) << engine->name() << " " << text;
      std::set<uint32_t> loose_set = PreSet(*loose);
      for (uint32_t pre : expected) {
        EXPECT_TRUE(loose_set.count(pre) > 0)
            << engine->name() << " non-strict lost a true result on "
            << text << " (pre " << pre << ")";
      }
    }
  }
}

TEST(EngineTest, SmallDocumentCorpus) {
  auto db = BuildTestDb(SmallAuctionXml());
  CheckQueryCorpus(db.get(), {
                                 "/site",
                                 "/site/people",
                                 "/site/people/person",
                                 "/site/people/person/name",
                                 "/site/*/person",
                                 "/site/*/person//city",
                                 "/site//city",
                                 "//city",
                                 "//person/address/city",
                                 "//bidder/date",
                                 "/*/*/open_auction/bidder/date",
                                 "/site//europe/item",
                                 "/site//europe//item",
                                 "/site/people/person/address/..",
                                 "//address/../name",
                                 "/site/people/person[address/city]",
                                 "/site/people/person[//city]/name",
                                 "/nonexistent",
                                 "//nonexistent",
                             });
}

TEST(EngineTest, XmarkDocumentCorpus) {
  xmark::GeneratorOptions options;
  options.target_bytes = 30 << 10;
  options.seed = 5;
  auto generated = xmark::GenerateAuctionDocument(options);
  auto db = BuildTestDb(generated.xml);
  CheckQueryCorpus(db.get(), {
                                 "/site/regions/europe/item",
                                 "/site//europe/item",
                                 "/site/*/person//city",
                                 "//bidder/date",
                                 "/*/*/open_auction/bidder/date",
                                 "/site/people/person/profile",
                             });
}

TEST(EngineTest, NonStrictAccuracyIs100ForAbsoluteQueries) {
  // Fig. 7: queries without // reach 100% accuracy.
  auto db = BuildTestDb(SmallAuctionXml());
  Engines engines(db.get());
  for (const char* text :
       {"/site/people/person", "/site/regions/europe/item",
        "/site/open_auctions/open_auction/bidder/date"}) {
    auto parsed = ParseQuery(text);
    ASSERT_TRUE(parsed.ok());
    auto strict =
        engines.simple.Execute(*parsed, MatchMode::kEquality, nullptr);
    auto loose =
        engines.simple.Execute(*parsed, MatchMode::kContainment, nullptr);
    ASSERT_TRUE(strict.ok() && loose.ok());
    EXPECT_EQ(PreSet(*strict), PreSet(*loose)) << text;
  }
}

TEST(EngineTest, NonStrictOverApproximatesOnDescendantQueries) {
  // '//city' in non-strict mode also returns ancestors that merely contain
  // a city (e.g. address) — the accuracy loss fig. 7 measures.
  auto db = BuildTestDb(SmallAuctionXml());
  Engines engines(db.get());
  auto parsed = ParseQuery("/site/*/person//city");
  ASSERT_TRUE(parsed.ok());
  auto strict =
      engines.simple.Execute(*parsed, MatchMode::kEquality, nullptr);
  auto loose =
      engines.simple.Execute(*parsed, MatchMode::kContainment, nullptr);
  ASSERT_TRUE(strict.ok() && loose.ok());
  EXPECT_EQ(strict->size(), 2u);          // the two real cities
  EXPECT_GT(loose->size(), strict->size());  // plus containing addresses
}

TEST(EngineTest, AdvancedPrunesDeadBranches) {
  // On queries with // the advanced engine must visit (and test) fewer
  // candidates than the simple engine — the core claim of fig. 6.
  xmark::GeneratorOptions options;
  options.target_bytes = 60 << 10;
  auto generated = xmark::GenerateAuctionDocument(options);
  auto db = BuildTestDb(generated.xml);
  Engines engines(db.get());
  for (const char* text : {"/site/*/person//city", "//bidder/date"}) {
    auto parsed = ParseQuery(text);
    ASSERT_TRUE(parsed.ok());
    QueryStats simple_stats, advanced_stats;
    ASSERT_TRUE(engines.simple
                    .Execute(*parsed, MatchMode::kContainment, &simple_stats)
                    .ok());
    ASSERT_TRUE(engines.advanced
                    .Execute(*parsed, MatchMode::kContainment,
                             &advanced_stats)
                    .ok());
    EXPECT_LT(advanced_stats.eval.nodes_visited,
              simple_stats.eval.nodes_visited)
        << text;
  }
}

TEST(EngineTest, AdvancedPaysLookaheadOnLinearQueries) {
  // Table 1 / fig. 5: on plain child-step queries the advanced engine does
  // *more* evaluations (constant factor), not fewer.
  auto db = BuildTestDb(SmallAuctionXml());
  Engines engines(db.get());
  auto parsed = ParseQuery("/site/people/person/name");
  ASSERT_TRUE(parsed.ok());
  QueryStats simple_stats, advanced_stats;
  ASSERT_TRUE(engines.simple
                  .Execute(*parsed, MatchMode::kContainment, &simple_stats)
                  .ok());
  ASSERT_TRUE(engines.advanced
                  .Execute(*parsed, MatchMode::kContainment, &advanced_stats)
                  .ok());
  EXPECT_GE(advanced_stats.eval.evaluations, simple_stats.eval.evaluations);
}

TEST(EngineTest, TrieContainsQueryFindsWord) {
  // §4 end to end: trie-encode names, query with contains(text(), ...).
  auto db = BuildTestDb(
      "<people>"
      "<person><name>Joan Johnson</name></person>"
      "<person><name>Mary Smith</name></person>"
      "</people>",
      83, /*trie=*/true);
  Engines engines(db.get());
  auto parsed = ParseQuery("/people/person/name[contains(text(), \"Joan\")]");
  ASSERT_TRUE(parsed.ok());

  auto truth = EvaluateGroundTruth(*parsed, db->doc);
  ASSERT_TRUE(truth.ok());
  ASSERT_EQ(truth->size(), 1u);

  for (QueryEngine* engine :
       {static_cast<QueryEngine*>(&engines.simple),
        static_cast<QueryEngine*>(&engines.advanced)}) {
    auto result = engine->Execute(*parsed, MatchMode::kEquality, nullptr);
    ASSERT_TRUE(result.ok()) << engine->name();
    EXPECT_EQ(PreSet(*result), PreSet(*truth)) << engine->name();
  }
  // A word that is present as a prefix should also hit (substring-prefix
  // semantics of the paper's rewrite)...
  auto prefix = ParseQuery("/people/person/name[contains(text(), \"Joa\")]");
  auto r = engines.simple.Execute(*prefix, MatchMode::kEquality, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
  // ... while an absent word misses.
  auto absent = ParseQuery("/people/person/name[contains(text(), \"zoe\")]");
  auto r2 = engines.simple.Execute(*absent, MatchMode::kEquality, nullptr);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->empty());
}

TEST(EngineTest, StatsDeltasAreScopedPerQuery) {
  auto db = BuildTestDb(SmallAuctionXml());
  Engines engines(db.get());
  auto parsed = ParseQuery("/site/people/person");
  ASSERT_TRUE(parsed.ok());
  QueryStats first, second;
  ASSERT_TRUE(
      engines.simple.Execute(*parsed, MatchMode::kContainment, &first).ok());
  ASSERT_TRUE(
      engines.simple.Execute(*parsed, MatchMode::kContainment, &second).ok());
  EXPECT_EQ(first.eval.evaluations, second.eval.evaluations);
  EXPECT_GT(first.eval.evaluations, 0u);
  EXPECT_GT(first.seconds, 0.0);
}

}  // namespace
}  // namespace ssdb::query
