#include <gtest/gtest.h>

#include "query/xpath.h"

namespace ssdb::query {
namespace {

TEST(XPathTest, ParsesChildSteps) {
  auto q = ParseQuery("/site/regions/europe");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->steps.size(), 3u);
  EXPECT_EQ(q->steps[0].axis, Step::Axis::kChild);
  EXPECT_EQ(q->steps[0].name, "site");
  EXPECT_EQ(q->steps[2].name, "europe");
  EXPECT_EQ(QueryToString(*q), "/site/regions/europe");
}

TEST(XPathTest, ParsesDescendantWildcardParent) {
  auto q = ParseQuery("//site/*/..//city");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->steps.size(), 4u);
  EXPECT_EQ(q->steps[0].axis, Step::Axis::kDescendant);
  EXPECT_EQ(q->steps[1].kind, Step::Kind::kWildcard);
  EXPECT_EQ(q->steps[2].kind, Step::Kind::kParent);
  EXPECT_EQ(q->steps[3].axis, Step::Axis::kDescendant);
  EXPECT_EQ(q->steps[3].name, "city");
  EXPECT_EQ(QueryToString(*q), "//site/*/..//city");
}

TEST(XPathTest, ParsesAllPaperQueries) {
  // Table 1 and Table 2 queries must all parse.
  const char* queries[] = {
      "/site",
      "/site/regions",
      "/site/regions/europe",
      "/site/regions/europe/item",
      "/site/regions/europe/item/description",
      "/site/regions/europe/item/description/parlist",
      "/site/regions/europe/item/description/parlist/listitem",
      "/site/regions/europe/item/description/parlist/listitem/text",
      "/site/regions/europe/item/description/parlist/listitem/text/keyword",
      "/site//europe/item",
      "/site//europe//item",
      "/site/*/person//city",
      "/*/*/open_auction/bidder/date",
      "//bidder/date",
  };
  for (const char* text : queries) {
    auto q = ParseQuery(text);
    ASSERT_TRUE(q.ok()) << text << ": " << q.status().ToString();
    EXPECT_EQ(QueryToString(*q), text);
  }
}

TEST(XPathTest, PathPredicate) {
  auto q = ParseQuery("/site/person[address/city]//name");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->steps.size(), 3u);
  const Step& person = q->steps[1];
  ASSERT_EQ(person.predicate.size(), 2u);
  EXPECT_EQ(person.predicate[0].name, "address");
  EXPECT_EQ(person.predicate[1].name, "city");
  EXPECT_EQ(QueryToString(*q), "/site/person[/address/city]//name");
}

TEST(XPathTest, DescendantPathPredicate) {
  // The paper's §4 example form: /name[//J/o/a/n].
  auto q = ParseQuery("/name[//j/o/a/n]");
  ASSERT_TRUE(q.ok());
  const Step& name = q->steps[0];
  ASSERT_EQ(name.predicate.size(), 4u);
  EXPECT_EQ(name.predicate[0].axis, Step::Axis::kDescendant);
  EXPECT_EQ(name.predicate[0].name, "j");
  EXPECT_EQ(name.predicate[3].name, "n");
}

TEST(XPathTest, ContainsPredicateRewritesToTrieSteps) {
  auto q = ParseQuery("/name[contains(text(), \"Joan\")]");
  ASSERT_TRUE(q.ok());
  const Step& name = q->steps[0];
  ASSERT_EQ(name.predicate.size(), 4u);
  EXPECT_EQ(name.predicate[0].axis, Step::Axis::kDescendant);
  EXPECT_EQ(name.predicate[0].name, "j");
  EXPECT_EQ(name.predicate[1].axis, Step::Axis::kChild);
  EXPECT_EQ(name.predicate[1].name, "o");
  EXPECT_EQ(name.predicate[2].name, "a");
  EXPECT_EQ(name.predicate[3].name, "n");
}

TEST(XPathTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("site").ok());          // relative
  EXPECT_FALSE(ParseQuery("/").ok());             // no name
  EXPECT_FALSE(ParseQuery("/site[").ok());        // unterminated predicate
  EXPECT_FALSE(ParseQuery("/site]").ok());        // stray bracket
  EXPECT_FALSE(ParseQuery("/site/.").ok());       // bare '.'
  EXPECT_FALSE(ParseQuery("/site/#").ok());       // bad char
  EXPECT_FALSE(
      ParseQuery("/a[contains(text(), \"\")]").ok());  // empty word
  EXPECT_FALSE(ParseQuery("/a[contains(text(), \"x\"").ok());
}

TEST(XPathTest, ParsesAggregateForms) {
  auto count = ParseQuery("count(/site//item)");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->aggregate, Aggregate::kCount);
  ASSERT_EQ(count->steps.size(), 2u);
  EXPECT_EQ(count->steps[1].name, "item");
  EXPECT_EQ(QueryToString(*count), "count(/site//item)");

  auto sum = ParseQuery("sum(//person)");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->aggregate, Aggregate::kSum);

  auto exists = ParseQuery("exists(/site/people)");
  ASSERT_TRUE(exists.ok());
  EXPECT_EQ(exists->aggregate, Aggregate::kExists);

  auto grouped = ParseQuery("count(/site/*)");
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->steps.back().kind, Step::Kind::kWildcard);

  auto plain = ParseQuery("/site//item");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->aggregate, Aggregate::kNone);

  EXPECT_FALSE(ParseQuery("count()").ok());
  EXPECT_FALSE(ParseQuery("count(site)").ok());   // relative inner path
  EXPECT_FALSE(ParseQuery("count(/a").ok());      // unclosed: not a wrapper
  EXPECT_FALSE(ParseQuery("avg(/a)").ok());       // unknown aggregate
}

TEST(XPathTest, StepEqualityOperator) {
  auto q1 = ParseQuery("/a//b");
  auto q2 = ParseQuery("/a//b");
  ASSERT_TRUE(q1.ok() && q2.ok());
  EXPECT_EQ(q1->steps, q2->steps);
}

}  // namespace
}  // namespace ssdb::query
