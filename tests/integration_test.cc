// Full-pipeline integration: disk storage + unix-socket RPC + both query
// engines + both matching rules, verified against plaintext ground truth —
// the complete fig. 3 architecture in one test binary.

#include <gtest/gtest.h>

#include <unistd.h>

#include <set>
#include <thread>

#include "core/database.h"
#include "query/ground_truth.h"
#include "rpc/socket_channel.h"
#include "storage/table.h"
#include "test_helpers.h"
#include "util/file_util.h"
#include "xmark/generator.h"

namespace ssdb {
namespace {

TEST(IntegrationTest, FullPipelineOverUnixSocketAgainstGroundTruth) {
  // 1. Generate a synthetic auction document.
  xmark::GeneratorOptions gen;
  gen.target_bytes = 30 << 10;
  gen.seed = 99;
  auto generated = xmark::GenerateAuctionDocument(gen);

  // 2. Server side: encode onto disk.
  TempDir dir("integration");
  auto field = *gf::Field::Make(83);
  auto map = *core::EncryptedXmlDatabase::TagMapForDtd(xmark::AuctionDtd(),
                                                       field, false);
  prg::Seed seed = prg::Seed::FromUint64(31415);
  core::DatabaseOptions options;
  options.backend = core::Backend::kDisk;
  options.disk_path = dir.FilePath("server.ssdb");
  auto server_db =
      core::EncryptedXmlDatabase::Encode(generated.xml, map, seed, options);
  ASSERT_TRUE(server_db.ok()) << server_db.status().ToString();

  // 3. Serve over a unix socket on a background thread.
  std::string socket_path =
      "/tmp/ssdb_integration_" + std::to_string(::getpid()) + ".sock";
  auto listener = rpc::UnixServerSocket::Listen(socket_path);
  ASSERT_TRUE(listener.ok());
  std::thread server_thread([&] {
    auto channel = (*listener)->Accept();
    if (!channel.ok()) return;
    (*server_db)->Serve(channel->get());
  });

  // 4. Client side: connect with only the seed + map.
  auto channel = rpc::ConnectUnix(socket_path);
  ASSERT_TRUE(channel.ok());
  auto client_db = core::EncryptedXmlDatabase::ConnectRemote(
      std::move(*channel), map, seed, 83, 1);
  ASSERT_TRUE(client_db.ok());

  // 5. Ground truth on the plaintext DOM.
  auto doc = *xml::ParseDocument(generated.xml);
  xml::AnnotatePrePost(&doc);

  const char* queries[] = {
      "/site/regions/europe/item",
      "/site//europe//item",
      "/site/*/person//city",
      "//bidder/date",
  };
  for (const char* text : queries) {
    auto parsed = query::ParseQuery(text);
    ASSERT_TRUE(parsed.ok());
    auto truth = query::EvaluateGroundTruth(*parsed, doc);
    ASSERT_TRUE(truth.ok());
    std::set<uint32_t> expected(truth->begin(), truth->end());

    for (core::EngineKind engine :
         {core::EngineKind::kSimple, core::EngineKind::kAdvanced}) {
      auto result = (*client_db)
                        ->QueryParsed(*parsed, engine,
                                      query::MatchMode::kEquality);
      ASSERT_TRUE(result.ok()) << text;
      std::set<uint32_t> actual;
      for (const auto& node : result->nodes) actual.insert(node.pre);
      EXPECT_EQ(actual, expected)
          << text << " engine="
          << (engine == core::EngineKind::kSimple ? "simple" : "advanced");
    }
  }

  // 6. Shut the server down cleanly by closing the client channel: the
  // ClientFilter owns it via the db; dropping the db closes the channel.
  client_db->reset();
  server_thread.join();
}

TEST(IntegrationTest, ReopenedDiskDatabaseStillAnswers) {
  TempDir dir("integration_reopen");
  std::string db_path = dir.FilePath("db.ssdb");
  auto field = *gf::Field::Make(83);
  auto map = *core::EncryptedXmlDatabase::TagMapForDtd(xmark::AuctionDtd(),
                                                       field, false);
  prg::Seed seed = prg::Seed::FromUint64(8);

  xmark::GeneratorOptions gen;
  gen.target_bytes = 15 << 10;
  auto generated = xmark::GenerateAuctionDocument(gen);

  size_t person_count = 0;
  {
    core::DatabaseOptions options;
    options.backend = core::Backend::kDisk;
    options.disk_path = db_path;
    auto db = core::EncryptedXmlDatabase::Encode(generated.xml, map, seed,
                                                 options);
    ASSERT_TRUE(db.ok());
    auto result = (*db)->Query("/site/people/person",
                               core::EngineKind::kAdvanced,
                               query::MatchMode::kEquality);
    ASSERT_TRUE(result.ok());
    person_count = result->nodes.size();
    ASSERT_GT(person_count, 0u);
  }

  // Reopen the raw store and query through a fresh filter stack — the
  // database file alone (plus seed + map) is sufficient.
  auto store = storage::DiskNodeStore::Open(db_path);
  ASSERT_TRUE(store.ok());
  gf::Ring ring(field);
  filter::LocalServerFilter server(ring, store->get());
  filter::ClientFilter client(ring, prg::Prg(seed), &server);
  query::AdvancedEngine engine(&client, &map);
  auto parsed = query::ParseQuery("/site/people/person");
  ASSERT_TRUE(parsed.ok());
  auto result = engine.Execute(*parsed, query::MatchMode::kEquality, nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), person_count);
}

}  // namespace
}  // namespace ssdb
