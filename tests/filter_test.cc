#include <gtest/gtest.h>

#include "test_helpers.h"

namespace ssdb::filter {
namespace {

using testing_helpers::BuildTestDb;
using testing_helpers::SmallAuctionXml;

// Finds the DOM node with a given pre number.
const xml::Node* FindByPre(const xml::Node* node, uint32_t pre) {
  if (node->pre == pre) return node;
  for (const auto& child : node->children) {
    if (!child->IsElement()) continue;
    const xml::Node* found = FindByPre(child.get(), pre);
    if (found != nullptr) return found;
  }
  return nullptr;
}

// True tag containment: does the subtree at `node` contain `name`?
bool SubtreeContains(const xml::Node* node, const std::string& name) {
  if (node->name == name) return true;
  for (const auto& child : node->children) {
    if (child->IsElement() && SubtreeContains(child.get(), name)) return true;
  }
  return false;
}

TEST(ServerFilterTest, NavigationMatchesDom) {
  auto db = BuildTestDb(SmallAuctionXml());
  auto root = db->server->Root();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->pre, 1u);
  EXPECT_EQ(root->parent, 0u);

  auto children = db->server->Children(root->pre);
  ASSERT_TRUE(children.ok());
  ASSERT_EQ(children->size(), 3u);  // regions, people, open_auctions

  // Cursor pipeline delivers every proper descendant exactly once.
  auto cursor = db->server->OpenDescendantCursor(root->pre, root->post);
  ASSERT_TRUE(cursor.ok());
  size_t total = 0;
  for (;;) {
    auto batch = db->server->NextNodes(*cursor, 7);
    ASSERT_TRUE(batch.ok());
    if (batch->empty()) break;
    total += batch->size();
  }
  EXPECT_EQ(total, db->doc.ElementCount() - 1);
}

TEST(ServerFilterTest, UnknownCursorAndNodeFail) {
  auto db = BuildTestDb(SmallAuctionXml());
  EXPECT_FALSE(db->server->NextNodes(999, 10).ok());
  EXPECT_FALSE(db->server->GetNode(9999).ok());
  EXPECT_TRUE(db->server->CloseCursor(12345).ok());  // idempotent
}

TEST(ClientFilterTest, ContainmentMatchesDomTruth) {
  auto db = BuildTestDb(SmallAuctionXml());
  xml::AnnotatePrePost(&db->doc);
  uint64_t node_count = db->doc.ElementCount();

  // Exhaustively compare the containment test with DOM truth for every
  // (node, tag) pair — reduction must preserve subtree membership exactly.
  for (uint32_t pre = 1; pre <= node_count; ++pre) {
    auto meta = db->client->GetNode(pre);
    ASSERT_TRUE(meta.ok());
    const xml::Node* dom_node = FindByPre(db->doc.root(), pre);
    ASSERT_NE(dom_node, nullptr);
    for (const auto& [name, value] : db->map.entries()) {
      auto contains = db->client->ContainsValue(*meta, value);
      ASSERT_TRUE(contains.ok());
      EXPECT_EQ(*contains, SubtreeContains(dom_node, name))
          << "node pre=" << pre << " tag=" << name;
    }
  }
}

TEST(ClientFilterTest, EqualityRecoversOwnTag) {
  auto db = BuildTestDb(SmallAuctionXml());
  uint64_t node_count = db->doc.ElementCount();
  for (uint32_t pre = 1; pre <= node_count; ++pre) {
    auto meta = db->client->GetNode(pre);
    ASSERT_TRUE(meta.ok());
    const xml::Node* dom_node = FindByPre(db->doc.root(), pre);
    ASSERT_NE(dom_node, nullptr);
    auto own = db->client->RecoverOwnValue(*meta);
    ASSERT_TRUE(own.ok()) << own.status().ToString();
    EXPECT_EQ(*own, *db->map.Lookup(dom_node->name)) << "pre=" << pre;

    auto equals = db->client->EqualsValue(*meta, *db->map.Lookup(dom_node->name));
    ASSERT_TRUE(equals.ok());
    EXPECT_TRUE(*equals);
    // And it is not equal to some other tag that the subtree does contain.
    for (const auto& [name, value] : db->map.entries()) {
      if (name == dom_node->name) continue;
      if (!SubtreeContains(dom_node, name)) continue;
      auto not_equals = db->client->EqualsValue(*meta, value);
      ASSERT_TRUE(not_equals.ok());
      EXPECT_FALSE(*not_equals) << "pre=" << pre << " tag=" << name;
    }
  }
}

TEST(ClientFilterTest, BatchedContainsAllMatchesIndividualTests) {
  auto db = BuildTestDb(SmallAuctionXml());
  uint64_t node_count = db->doc.ElementCount();
  std::vector<gf::Elem> all_values;
  for (const auto& [name, value] : db->map.entries()) {
    all_values.push_back(value);
  }
  for (uint32_t pre = 1; pre <= node_count; ++pre) {
    auto meta = db->client->GetNode(pre);
    ASSERT_TRUE(meta.ok());
    // Batched answer == conjunction of individual containment tests, for
    // the full tag set and for a small subset.
    bool expected_all = true;
    for (gf::Elem v : all_values) {
      auto contains = db->client->ContainsValue(*meta, v);
      ASSERT_TRUE(contains.ok());
      expected_all = expected_all && *contains;
    }
    auto batched = db->client->ContainsAllValues(*meta, all_values);
    ASSERT_TRUE(batched.ok());
    EXPECT_EQ(*batched, expected_all) << "pre=" << pre;
  }
  // Empty set is vacuously contained.
  auto root = db->client->Root();
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(*db->client->ContainsAllValues(*root, {}));
  // One server call for a multi-value batch.
  db->client->stats().Reset();
  ASSERT_TRUE(db->client
                  ->ContainsAllValues(*root, {*db->map.Lookup("person"),
                                              *db->map.Lookup("city")})
                  .ok());
  EXPECT_EQ(db->client->stats().server_calls, 1u);
  EXPECT_EQ(db->client->stats().evaluations, 2u);
}

TEST(ClientFilterTest, StatsCountCosts) {
  auto db = BuildTestDb(SmallAuctionXml());
  auto root = db->client->Root();
  ASSERT_TRUE(root.ok());
  db->client->stats().Reset();

  gf::Elem person = *db->map.Lookup("person");
  ASSERT_TRUE(db->client->ContainsValue(*root, person).ok());
  EXPECT_EQ(db->client->stats().containment_tests, 1u);
  EXPECT_EQ(db->client->stats().evaluations, 1u);

  db->client->stats().Reset();
  ASSERT_TRUE(db->client->EqualsValue(*root, person).ok());
  // Equality cost: 1 + #children polynomial units (root has 3 children).
  EXPECT_EQ(db->client->stats().equality_tests, 1u);
  EXPECT_EQ(db->client->stats().evaluations, 4u);
  EXPECT_EQ(db->client->stats().shares_fetched, 4u);
}

TEST(ClientFilterTest, WrongSeedBreaksEverything) {
  // With a wrong seed the client regenerates garbage shares: containment
  // of the root tag in the root node should fail (overwhelmingly likely).
  auto db = BuildTestDb(SmallAuctionXml());
  filter::ClientFilter bad_client(db->ring,
                                  prg::Prg(prg::Seed::FromUint64(666)),
                                  db->server.get());
  auto root = bad_client.Root();
  ASSERT_TRUE(root.ok());
  auto contains = bad_client.ContainsValue(*root, *db->map.Lookup("site"));
  ASSERT_TRUE(contains.ok());
  EXPECT_FALSE(*contains);
  // The equality test detects the inconsistency outright.
  EXPECT_FALSE(bad_client.RecoverOwnValue(*root).ok());
}

TEST(ClientFilterTest, FigureOneExample) {
  // §3 / fig. 1: p = 5, map {a:2, b:1, c:3}, document c(b(a,b), c(a)).
  std::string xml = "<c><b><a/><b/></b><c><a/></c></c>";
  auto db = BuildTestDb(xml, /*p=*/5);
  // Map is assigned by first appearance: c=1, b=2, a=3. Look values up
  // rather than assuming fig. 1's exact assignment.
  gf::Elem a = *db->map.Lookup("a");
  gf::Elem b = *db->map.Lookup("b");
  gf::Elem c = *db->map.Lookup("c");

  auto root = db->client->Root();
  ASSERT_TRUE(root.ok());
  // The root subtree contains all three tags.
  EXPECT_TRUE(*db->client->ContainsValue(*root, a));
  EXPECT_TRUE(*db->client->ContainsValue(*root, b));
  EXPECT_TRUE(*db->client->ContainsValue(*root, c));
  // Root node is a c.
  EXPECT_EQ(*db->client->RecoverOwnValue(*root), c);

  // First child (b subtree) contains a and b but no c.
  auto children = db->client->Children(*root);
  ASSERT_TRUE(children.ok());
  ASSERT_EQ(children->size(), 2u);
  EXPECT_TRUE(*db->client->ContainsValue((*children)[0], a));
  EXPECT_TRUE(*db->client->ContainsValue((*children)[0], b));
  EXPECT_FALSE(*db->client->ContainsValue((*children)[0], c));
  EXPECT_EQ(*db->client->RecoverOwnValue((*children)[0]), b);
  // Second child (c subtree) contains a and c but no b.
  EXPECT_TRUE(*db->client->ContainsValue((*children)[1], a));
  EXPECT_FALSE(*db->client->ContainsValue((*children)[1], b));
  EXPECT_TRUE(*db->client->ContainsValue((*children)[1], c));
}

}  // namespace
}  // namespace ssdb::filter
