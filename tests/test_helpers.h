// Shared fixtures: build a fully-encoded in-memory database (plus annotated
// DOM and ground-truth machinery) from an XML string.

#ifndef SSDB_TESTS_TEST_HELPERS_H_
#define SSDB_TESTS_TEST_HELPERS_H_

#include <memory>
#include <set>
#include <string>

#include "encode/encoder.h"
#include "filter/client_filter.h"
#include "filter/server_filter.h"
#include "gf/ring.h"
#include "mapping/tag_map.h"
#include "prg/prg.h"
#include "storage/memory_backend.h"
#include "trie/trie_xml.h"
#include "util/logging.h"
#include "xml/dom.h"

namespace ssdb::testing_helpers {

struct TestDb {
  gf::Field field;
  gf::Ring ring;
  mapping::TagMap map;
  prg::Seed seed;
  xml::Document doc;  // AnnotatePrePost'ed (trie-transformed if requested)
  std::unique_ptr<storage::MemoryNodeStore> store;
  std::unique_ptr<filter::LocalServerFilter> server;
  std::unique_ptr<filter::ClientFilter> client;
  encode::EncodeResult encode_result;

  TestDb(gf::Field f, mapping::TagMap m)
      : field(f), ring(f), map(std::move(m)), seed(prg::Seed::FromUint64(7)) {}
};

// Tag names appearing in a document, in first-appearance order.
inline std::vector<std::string> CollectNames(const xml::Document& doc) {
  std::vector<std::string> names;
  std::set<std::string> seen;
  xml::ForEachElement(doc.root(), [&](const xml::Node& node) {
    if (seen.insert(node.name).second) names.push_back(node.name);
  });
  return names;
}

inline std::unique_ptr<TestDb> BuildTestDb(const std::string& xml,
                                           uint32_t p = 83,
                                           bool trie = false) {
  auto field_or = gf::Field::Make(p);
  SSDB_CHECK(field_or.ok());

  auto doc_or = xml::ParseDocument(xml);
  SSDB_CHECK(doc_or.ok()) << doc_or.status().ToString();
  xml::Document doc = std::move(*doc_or);
  if (trie) {
    trie::TransformDocument(&doc);
  }
  xml::AnnotatePrePost(&doc);

  std::vector<std::string> names = CollectNames(doc);
  if (trie) {
    std::set<std::string> present(names.begin(), names.end());
    for (const auto& label : trie::TrieAlphabet()) {
      if (present.insert(label).second) names.push_back(label);
    }
  }
  auto map_or = mapping::TagMap::FromNames(names, *field_or);
  SSDB_CHECK(map_or.ok()) << map_or.status().ToString();

  auto db = std::make_unique<TestDb>(*field_or, std::move(*map_or));
  db->doc = std::move(doc);
  db->store = std::make_unique<storage::MemoryNodeStore>();

  encode::EncodeOptions options;
  options.trie = trie;
  // Memory-backed fixtures carry the §9 verification track so any test can
  // exercise verified aggregation; disk encodes keep the default (off).
  options.verify_aggregate = true;
  encode::Encoder encoder(db->ring, db->map, prg::Prg(db->seed),
                          db->store.get(), options);
  auto result = encoder.EncodeString(xml);
  SSDB_CHECK(result.ok()) << result.status().ToString();
  db->encode_result = *result;

  db->server = std::make_unique<filter::LocalServerFilter>(db->ring,
                                                           db->store.get());
  db->client = std::make_unique<filter::ClientFilter>(
      db->ring, prg::Prg(db->seed), db->server.get());
  return db;
}

// A small but structurally rich auction-flavoured document used across
// filter/engine tests (two persons with cities, auctions with bidders).
inline std::string SmallAuctionXml() {
  return R"(<site>
  <regions>
    <europe>
      <item><name>clock</name><description><text>old clock</text></description></item>
    </europe>
    <asia>
      <item><name>vase</name><description><text>ming vase</text></description></item>
    </asia>
  </regions>
  <people>
    <person>
      <name>Joan Johnson</name>
      <address><street>Main St</street><city>Amsterdam</city><country>NL</country></address>
    </person>
    <person>
      <name>John Smith</name>
      <address><street>Oak Ave</street><city>Berlin</city><country>DE</country></address>
    </person>
    <person>
      <name>Mary Miller</name>
    </person>
  </people>
  <open_auctions>
    <open_auction>
      <bidder><date>01/02/2003</date><time>10:15</time></bidder>
      <bidder><date>02/03/2003</date><time>11:30</time></bidder>
      <current>12.50</current>
    </open_auction>
    <open_auction>
      <current>99.99</current>
    </open_auction>
  </open_auctions>
</site>)";
}

}  // namespace ssdb::testing_helpers

#endif  // SSDB_TESTS_TEST_HELPERS_H_
