// Control-plane battery (DESIGN.md §11): the monitor's per-server state
// machine driven by scripted probes (every edge: up→suspect→down,
// blip recovery, rise-gated recovery, relapse), the kPing RPC against a
// live ConcurrentServer (including a ByzantineChannel-corrupted probe),
// fail-fast Unavailable from MultiServerFilter and the shard router with
// the dead server NAMED, partial_ok corpus merges checked against
// per-document ground truth with one group down, and the admin HTTP
// surface — responses parsed with the §10 JSON parser, malformed and
// oversized requests rejected.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "control/admin_http.h"
#include "control/health.h"
#include "control/monitor.h"
#include "core/database.h"
#include "fault_injection.h"
#include "query/xpath.h"
#include "rpc/client.h"
#include "rpc/concurrent_server.h"
#include "rpc/protocol.h"
#include "rpc/server.h"
#include "rpc/socket_channel.h"
#include "shard/catalog.h"
#include "shard/router.h"
#include "test_helpers.h"
#include "util/json.h"
#include "xmark/generator.h"

namespace ssdb {
namespace {

using control::AdminHttpServer;
using control::AdminOptions;
using control::Monitor;
using control::MonitorOptions;
using control::MonitorTarget;
using control::ServerHealth;
using control::ServerState;
using shard::Router;
using shard::ShardCatalog;
using shard::ShardEntry;
using testing_helpers::BuildTestDb;
using testing_helpers::ByzantineChannel;
using testing_helpers::TestDb;

// --- scripted probes --------------------------------------------------------

// A deterministic probe: pops the next verdict from a per-endpoint script
// (true = healthy ping, false = refused). Lets the tests walk the state
// machine edge by edge without sockets or clocks.
struct ProbeScript {
  std::map<std::string, std::deque<bool>> verdicts;
  uint64_t epoch = 0;

  control::ProbeFn AsProbe() {
    return [this](const std::string& endpoint,
                  int /*timeout*/) -> StatusOr<rpc::PingInfo> {
      auto it = verdicts.find(endpoint);
      SSDB_CHECK(it != verdicts.end() && !it->second.empty())
          << "script exhausted for " << endpoint;
      bool ok = it->second.front();
      it->second.pop_front();
      if (!ok) return Status::IOError("connect " + endpoint + ": refused");
      rpc::PingInfo info;
      info.build = "scripted/1.0";
      info.uptime_seconds = 7;
      info.stats_epoch = ++epoch;
      return info;
    };
  }
};

Monitor MakeScriptedMonitor(ProbeScript* script, int fall, int rise,
                            std::vector<MonitorTarget> targets) {
  MonitorOptions options;
  options.fall = fall;
  options.rise = rise;
  options.probe = script->AsProbe();
  return Monitor(std::move(targets), std::move(options));
}

ServerHealth Only(const Monitor& monitor) {
  std::vector<ServerHealth> all = monitor.Snapshot();
  SSDB_CHECK(all.size() == 1u);
  return all[0];
}

// --- monitor state machine --------------------------------------------------

TEST(MonitorTest, SingleFailureIsSuspectNotDown) {
  ProbeScript script;
  script.verdicts["s.sock"] = {false, true};
  Monitor monitor = MakeScriptedMonitor(&script, /*fall=*/3, /*rise=*/2,
                                        {{"s", "s.sock"}});

  EXPECT_EQ(monitor.StateOf("s.sock"), ServerState::kUp);

  monitor.ProbeOnce();  // fail
  ServerHealth h = Only(monitor);
  EXPECT_EQ(h.state, ServerState::kSuspect);
  EXPECT_EQ(h.consecutive_failures, 1u);
  EXPECT_EQ(h.transitions, 1u);
  EXPECT_NE(h.last_error.find("refused"), std::string::npos);
  // kSuspect keeps serving: only kDown triggers fail-fast downstream.
  EXPECT_FALSE(monitor.IsDown("s.sock"));

  monitor.ProbeOnce();  // success: a blip restores full trust immediately
  h = Only(monitor);
  EXPECT_EQ(h.state, ServerState::kUp);
  EXPECT_EQ(h.consecutive_failures, 0u);
  EXPECT_EQ(h.consecutive_successes, 1u);
  EXPECT_EQ(h.transitions, 2u);
  EXPECT_EQ(h.build, "scripted/1.0");
  EXPECT_EQ(h.probes, 2u);
}

TEST(MonitorTest, FallConsecutiveFailuresHardenIntoDown) {
  ProbeScript script;
  script.verdicts["s.sock"] = {false, false, false, false};
  Monitor monitor = MakeScriptedMonitor(&script, /*fall=*/3, /*rise=*/2,
                                        {{"s", "s.sock"}});

  monitor.ProbeOnce();
  EXPECT_EQ(monitor.StateOf("s.sock"), ServerState::kSuspect);
  monitor.ProbeOnce();
  EXPECT_EQ(monitor.StateOf("s.sock"), ServerState::kSuspect);
  monitor.ProbeOnce();  // third consecutive failure
  EXPECT_EQ(monitor.StateOf("s.sock"), ServerState::kDown);
  EXPECT_TRUE(monitor.IsDown("s.sock"));

  monitor.ProbeOnce();  // kDown is absorbing under failure
  ServerHealth h = Only(monitor);
  EXPECT_EQ(h.state, ServerState::kDown);
  EXPECT_EQ(h.consecutive_failures, 4u);
  EXPECT_EQ(h.transitions, 2u);  // up→suspect, suspect→down
}

TEST(MonitorTest, RecoveryIsGatedOnRiseAndRelapsesHard) {
  ProbeScript script;
  // down (fall=2) → recovering → relapse straight back down → rise=2 → up.
  script.verdicts["s.sock"] = {false, false, true, false, true, true};
  Monitor monitor = MakeScriptedMonitor(&script, /*fall=*/2, /*rise=*/2,
                                        {{"s", "s.sock"}});

  monitor.ProbeOnce();
  monitor.ProbeOnce();
  EXPECT_EQ(monitor.StateOf("s.sock"), ServerState::kDown);

  monitor.ProbeOnce();  // first success: recovering, NOT yet trusted
  EXPECT_EQ(monitor.StateOf("s.sock"), ServerState::kRecovering);
  EXPECT_FALSE(monitor.IsDown("s.sock"));

  monitor.ProbeOnce();  // relapse: no fresh fall budget, straight to down
  EXPECT_EQ(monitor.StateOf("s.sock"), ServerState::kDown);

  monitor.ProbeOnce();
  EXPECT_EQ(monitor.StateOf("s.sock"), ServerState::kRecovering);
  monitor.ProbeOnce();  // second consecutive success: trusted again
  ServerHealth h = Only(monitor);
  EXPECT_EQ(h.state, ServerState::kUp);
  EXPECT_EQ(h.consecutive_successes, 2u);
}

TEST(MonitorTest, TargetsAreIndependentAndUnknownEndpointsReportUp) {
  ProbeScript script;
  script.verdicts["a.sock"] = {true, true, true};
  script.verdicts["b.sock"] = {false, false, false};
  Monitor monitor = MakeScriptedMonitor(&script, /*fall=*/3, /*rise=*/2,
                                        {{"a", "a.sock"}, {"b", "b.sock"}});

  for (int i = 0; i < 3; ++i) monitor.ProbeOnce();
  EXPECT_EQ(monitor.StateOf("a.sock"), ServerState::kUp);
  EXPECT_EQ(monitor.StateOf("b.sock"), ServerState::kDown);
  // Absence of monitoring is not evidence of failure.
  EXPECT_EQ(monitor.StateOf("never-configured.sock"), ServerState::kUp);
  EXPECT_FALSE(monitor.IsDown("never-configured.sock"));
}

TEST(MonitorTest, ProbeThreadDrivesTheMachineWithoutManualSweeps) {
  MonitorOptions options;
  options.probe_interval_ms = 5;
  options.fall = 2;
  options.probe = [](const std::string&, int) -> StatusOr<rpc::PingInfo> {
    return Status::IOError("always dead");
  };
  Monitor monitor({{"s", "s.sock"}}, std::move(options));
  monitor.Start();
  bool down = false;
  for (int i = 0; i < 1000 && !down; ++i) {
    down = monitor.IsDown("s.sock");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  monitor.Stop();
  EXPECT_TRUE(down);
  EXPECT_GE(Only(monitor).probes, 2u);
}

TEST(MonitorTest, ServersJsonParsesWithOurOwnParser) {
  ProbeScript script;
  script.verdicts["a.sock"] = {true};
  script.verdicts["b.sock"] = {false};
  Monitor monitor = MakeScriptedMonitor(&script, /*fall=*/1, /*rise=*/1,
                                        {{"a", "a.sock"}, {"b", "b.sock"}});
  monitor.ProbeOnce();

  auto doc = ParseJson(monitor.ServersJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* servers = doc->Get("servers");
  ASSERT_NE(servers, nullptr);
  ASSERT_TRUE(servers->is_array());
  ASSERT_EQ(servers->array.size(), 2u);

  const JsonValue& a = servers->array[0];
  EXPECT_EQ(a.GetString("name"), "a");
  EXPECT_EQ(a.GetString("endpoint"), "a.sock");
  EXPECT_EQ(a.GetString("state"), "up");
  EXPECT_EQ(a.GetString("build"), "scripted/1.0");
  EXPECT_EQ(a.GetUint("probes"), 1u);
  EXPECT_EQ(a.GetUint("uptime_seconds"), 7u);

  const JsonValue& b = servers->array[1];
  EXPECT_EQ(b.GetString("state"), "down");  // fall=1: one failure suffices
  EXPECT_EQ(b.GetUint("consecutive_failures"), 1u);
  EXPECT_NE(b.GetString("last_error").find("refused"), std::string::npos);
  // last_probe_ms is fixed-point (the JSON subset has no exponent form).
  ASSERT_NE(b.Get("last_probe_ms"), nullptr);
  EXPECT_TRUE(b.Get("last_probe_ms")->is_number());
}

// --- kPing against a live server --------------------------------------------

std::string SocketPath(const char* name) {
  return "/tmp/ssdb_control_" + std::to_string(::getpid()) + "_" + name +
         ".sock";
}

// A small XMark database behind a running ConcurrentServer.
struct LiveServer {
  std::unique_ptr<TestDb> db;
  std::unique_ptr<rpc::ConcurrentServer> server;
  std::string path;

  explicit LiveServer(const char* name) {
    xmark::GeneratorOptions gen;
    gen.target_bytes = 8 << 10;
    gen.seed = 7;
    db = BuildTestDb(xmark::GenerateAuctionDocument(gen).xml);
    path = SocketPath(name);
    auto listener = rpc::UnixServerSocket::Listen(path);
    SSDB_CHECK(listener.ok()) << listener.status().ToString();
    rpc::ConcurrentServerOptions options;
    options.threads = 2;
    server = std::make_unique<rpc::ConcurrentServer>(
        db->ring, db->server.get(), std::move(*listener), options);
    SSDB_CHECK(server->Start().ok());
  }
  ~LiveServer() {
    server->Shutdown();
    ::unlink(path.c_str());
  }
};

TEST(PingTest, EchoesBuildAndMonotoneStatsEpoch) {
  LiveServer live("ping");
  auto channel = rpc::ConnectUnix(live.path);
  ASSERT_TRUE(channel.ok()) << channel.status().ToString();

  auto first = rpc::Ping(channel->get());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->build, rpc::kServerBuild);
  EXPECT_GE(first->stats_epoch, 1u);  // the ping itself is a request

  auto second = rpc::Ping(channel->get());
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second->stats_epoch, first->stats_epoch);
  (*channel)->Close();
}

TEST(PingTest, DefaultProbeSucceedsAgainstLiveServerAndFailsOnDeadSocket) {
  LiveServer live("probe");
  auto up = control::ProbeUnixPing(live.path, /*timeout_seconds=*/2);
  ASSERT_TRUE(up.ok()) << up.status().ToString();
  EXPECT_EQ(up->build, rpc::kServerBuild);

  auto down = control::ProbeUnixPing(SocketPath("nonexistent"), 2);
  EXPECT_FALSE(down.ok());
}

TEST(PingTest, CorruptedProbeCountsAsFailureInTheMonitor) {
  LiveServer live("byzantine");
  // Every probe dials the real server but flips one bit of the reply. A
  // flip can land anywhere — frame header, status, build string, a varint
  // — so a strict probe validates the echoed build and treats a mismatch
  // like a dead server. The monitor must reach kDown on such a target.
  uint64_t seed = 1;
  MonitorOptions options;
  options.fall = 2;
  options.probe = [&](const std::string& endpoint,
                      int /*timeout*/) -> StatusOr<rpc::PingInfo> {
    auto channel = rpc::ConnectUnix(endpoint);
    if (!channel.ok()) return channel.status();
    ByzantineChannel byzantine(std::move(*channel), /*probability=*/1.0,
                               /*rng_seed=*/seed++);
    StatusOr<rpc::PingInfo> info = rpc::Ping(&byzantine);
    byzantine.Close();
    SSDB_RETURN_IF_ERROR(info.status());
    if (info->build != rpc::kServerBuild) {
      return Status::Corruption("ping reply corrupted: build '" +
                                info->build + "'");
    }
    return info;
  };
  Monitor monitor({{"live", live.path}}, std::move(options));

  // A flip in the uptime/epoch varints slips past build validation, so a
  // single sweep pair is not guaranteed to fail — but two consecutive
  // failing probes arrive within a handful of sweeps.
  for (int i = 0; i < 50 && !monitor.IsDown(live.path); ++i) {
    monitor.ProbeOnce();
  }
  ServerHealth h = Only(monitor);
  EXPECT_EQ(h.state, ServerState::kDown);
  EXPECT_GE(h.consecutive_failures, 2u);
  EXPECT_FALSE(h.last_error.empty());
}

// --- fail-fast in the fan-out filter and the router -------------------------

// A hand-settable HealthView: what the Monitor is to production code.
class FakeHealth : public control::HealthView {
 public:
  ServerState StateOf(std::string_view endpoint) const override {
    auto it = states_.find(std::string(endpoint));
    return it == states_.end() ? ServerState::kUp : it->second;
  }
  void Set(const std::string& endpoint, ServerState state) {
    states_[endpoint] = state;
  }

 private:
  std::map<std::string, ServerState> states_;
};

ShardEntry MakeEntry(const std::string& id, uint32_t group, size_t slices) {
  ShardEntry entry;
  entry.doc_id = id;
  entry.group = group;
  for (size_t i = 0; i < slices; ++i) {
    entry.slices.push_back("mem://" + id + "/" + std::to_string(i));
  }
  return entry;
}

query::Query Parse(const std::string& text) {
  auto parsed = query::ParseQuery(text);
  SSDB_CHECK(parsed.ok()) << parsed.status().ToString();
  return *parsed;
}

// Three documents in three server groups (slices 1/2/2), same shape as the
// shard battery's corpus but sized down — the subject here is failover,
// not merging breadth.
struct Corpus {
  gf::Field field;
  gf::Ring ring;
  mapping::TagMap map;
  std::vector<std::string> ids{"alpha", "beta", "gamma"};
  std::vector<uint32_t> groups{0, 1, 2};
  std::vector<uint32_t> slices{1, 2, 2};
  std::vector<prg::Seed> seeds;
  std::vector<std::unique_ptr<core::EncryptedXmlDatabase>> dbs;
  ShardCatalog catalog;
  std::map<std::string, std::vector<filter::ServerFilter*>> backends;
  std::map<std::string, prg::Seed> seed_map;

  Corpus()
      : field(*gf::Field::Make(83)),
        ring(field),
        map(*core::EncryptedXmlDatabase::TagMapForDtd(xmark::AuctionDtd(),
                                                      field, false)) {
    for (size_t i = 0; i < ids.size(); ++i) {
      xmark::GeneratorOptions gen;
      gen.target_bytes = (6u + 4u * i) << 10;
      gen.seed = 17 * (i + 1);
      seeds.push_back(prg::Seed::FromUint64(2000 + i));

      core::DatabaseOptions options;
      options.backend = core::Backend::kMemory;
      options.servers = slices[i];
      auto db = core::EncryptedXmlDatabase::Encode(
          xmark::GenerateAuctionDocument(gen).xml, map, seeds[i], options);
      SSDB_CHECK(db.ok()) << db.status().ToString();
      dbs.push_back(std::move(*db));

      SSDB_CHECK(catalog.Add(MakeEntry(ids[i], groups[i], slices[i])).ok());
      std::vector<filter::ServerFilter*> doc_backends;
      for (uint32_t s = 0; s < slices[i]; ++s) {
        doc_backends.push_back(dbs[i]->slice_filter(s));
      }
      backends.emplace(ids[i], doc_backends);
      seed_map.emplace(ids[i], seeds[i]);
    }
  }

  StatusOr<std::unique_ptr<Router>> OpenRouter(bool partial_ok) {
    core::CorpusOptions options;
    options.partial_ok = partial_ok;
    return Router::FromBackends(catalog, &map, seeds[0], seed_map, options,
                                backends);
  }

  uint64_t TruthTotal(size_t i, const std::string& text) {
    auto result = dbs[i]->Query(text, core::EngineKind::kAdvanced,
                                query::MatchMode::kEquality);
    SSDB_CHECK(result.ok()) << result.status().ToString();
    return result->aggregate.Total();
  }
};

TEST(FailoverTest, MultiServerFilterFailsFastNamingTheDownServer) {
  Corpus fx;
  // beta has two slices — a genuine fan-out filter.
  filter::MultiServerFilter fanout(fx.ring, fx.backends["beta"]);
  FakeHealth health;
  fanout.SetEndpointHealth(&health, {"mem://beta/0", "mem://beta/1"});

  // All up: share ops work.
  ASSERT_TRUE(fanout.EvalAt(1, fx.field.FromInt(3)).ok());

  health.Set("mem://beta/1", ServerState::kDown);
  auto blocked = fanout.EvalAt(1, fx.field.FromInt(3));
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(blocked.status().ToString().find("server 1"), std::string::npos);
  EXPECT_NE(blocked.status().ToString().find("mem://beta/1"),
            std::string::npos);

  // kSuspect and kRecovering keep serving — only kDown fails fast.
  health.Set("mem://beta/1", ServerState::kSuspect);
  EXPECT_TRUE(fanout.EvalAt(1, fx.field.FromInt(3)).ok());
  health.Set("mem://beta/1", ServerState::kRecovering);
  EXPECT_TRUE(fanout.EvalAt(1, fx.field.FromInt(3)).ok());

  health.Set("mem://beta/1", ServerState::kDown);
  auto agg = fanout.PartialAggregate(agg::Spec{});
  ASSERT_FALSE(agg.ok());
  EXPECT_EQ(agg.status().code(), StatusCode::kUnavailable);
}

TEST(FailoverTest, RouterFailsFastOnDownGroupAndOthersKeepAnswering) {
  Corpus fx;
  auto router = fx.OpenRouter(/*partial_ok=*/false);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  FakeHealth health;
  (*router)->SetHealth(&health);

  const std::string query = "count(/site//person)";
  // Healthy: all three documents answer.
  auto doc = (*router)->QueryDoc("gamma", Parse(query),
                                 query::MatchMode::kEquality);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  // Kill one slice of gamma's group.
  health.Set("mem://gamma/1", ServerState::kDown);
  auto blocked = (*router)->QueryDoc("gamma", Parse(query),
                                     query::MatchMode::kEquality);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(blocked.status().ToString().find("server 1"), std::string::npos);
  EXPECT_NE(blocked.status().ToString().find("mem://gamma/1"),
            std::string::npos);

  // Documents in other groups are untouched.
  auto alpha = (*router)->QueryDoc("alpha", Parse(query),
                                   query::MatchMode::kEquality);
  EXPECT_TRUE(alpha.ok()) << alpha.status().ToString();

  // All-or-nothing corpus query fails, naming the document.
  auto corpus = (*router)->QueryCorpus(Parse(query),
                                       query::MatchMode::kEquality);
  ASSERT_FALSE(corpus.ok());
  EXPECT_NE(corpus.status().ToString().find("gamma"), std::string::npos);

  // Single-slice alpha fails fast too (no fan-out filter on that stack:
  // the router-level health check must cover it).
  health.Set("mem://alpha/0", ServerState::kDown);
  auto alpha_down = (*router)->QueryDoc("alpha", Parse(query),
                                        query::MatchMode::kEquality);
  ASSERT_FALSE(alpha_down.ok());
  EXPECT_EQ(alpha_down.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(alpha_down.status().ToString().find("mem://alpha/0"),
            std::string::npos);
}

TEST(FailoverTest, PartialCorpusMergesSurvivorsAndListsTheMissing) {
  Corpus fx;
  auto router = fx.OpenRouter(/*partial_ok=*/true);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  FakeHealth health;
  (*router)->SetHealth(&health);
  health.Set("mem://gamma/0", ServerState::kDown);

  for (const char* text :
       {"count(/site//person)", "sum(/site//bidder)", "count(/site/*)"}) {
    SCOPED_TRACE(text);
    auto corpus = (*router)->QueryCorpus(Parse(text),
                                         query::MatchMode::kEquality);
    ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
    EXPECT_EQ(corpus->documents, 2u);
    EXPECT_EQ(corpus->groups, 2u);
    ASSERT_EQ(corpus->missing.size(), 1u);
    EXPECT_EQ(corpus->missing[0].doc_id, "gamma");
    EXPECT_EQ(corpus->missing[0].group, 2u);
    EXPECT_EQ(corpus->missing[0].error.code(), StatusCode::kUnavailable);
    // The merge is exactly the survivors' ground truth — degraded results
    // must not silently drift.
    EXPECT_EQ(corpus->aggregate.Total(),
              fx.TruthTotal(0, text) + fx.TruthTotal(1, text));
  }

  // Everything down: partial_ok tolerates degraded, not dead.
  health.Set("mem://alpha/0", ServerState::kDown);
  health.Set("mem://beta/0", ServerState::kDown);
  auto dead = (*router)->QueryCorpus(Parse("count(/site//person)"),
                                     query::MatchMode::kEquality);
  ASSERT_FALSE(dead.ok());
  EXPECT_NE(dead.status().ToString().find("all 3 documents"),
            std::string::npos);
}

TEST(FailoverTest, PartialOpenSkipsUnreachableDocsAndRecordsWhy) {
  Corpus fx;
  // Corrupt beta's seed: its stack fails the open-time share probe, which
  // stands in for "group unreachable at open".
  fx.seed_map["beta"] = prg::Seed::FromUint64(999999);

  core::CorpusOptions strict;
  auto all_or_nothing = Router::FromBackends(
      fx.catalog, &fx.map, fx.seeds[0], fx.seed_map, strict, fx.backends);
  EXPECT_FALSE(all_or_nothing.ok());

  core::CorpusOptions tolerant;
  tolerant.partial_ok = true;
  auto router = Router::FromBackends(fx.catalog, &fx.map, fx.seeds[0],
                                     fx.seed_map, tolerant, fx.backends);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  EXPECT_EQ((*router)->document_count(), 2u);
  ASSERT_EQ((*router)->unreachable().size(), 1u);
  EXPECT_EQ((*router)->unreachable()[0].doc_id, "beta");

  // QueryDoc against the skipped document fails fast with the RECORDED
  // error, not a bogus NotFound.
  auto doc = (*router)->QueryDoc("beta", Parse("count(/site//person)"),
                                 query::MatchMode::kEquality);
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().code(), StatusCode::kNotFound);
  EXPECT_NE(doc.status().ToString().find("beta"), std::string::npos);

  // Corpus queries answer from the survivors and carry the open-time skip.
  auto corpus = (*router)->QueryCorpus(Parse("count(/site//person)"),
                                       query::MatchMode::kEquality);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  EXPECT_EQ(corpus->documents, 2u);
  ASSERT_EQ(corpus->missing.size(), 1u);
  EXPECT_EQ(corpus->missing[0].doc_id, "beta");
  EXPECT_EQ(corpus->aggregate.Total(),
            fx.TruthTotal(0, "count(/site//person)") +
                fx.TruthTotal(2, "count(/site//person)"));
}

// --- admin HTTP surface -----------------------------------------------------

// A deliberately dumb HTTP client: connect, send raw bytes, read to EOF.
// The server speaks Connection: close, so EOF delimits the response.
std::string HttpExchange(uint16_t port, const std::string& raw) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  SSDB_CHECK(fd >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  SSDB_CHECK(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) == 1);
  SSDB_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) == 0);
  size_t sent = 0;
  while (sent < raw.size()) {
    ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;  // server may close early on oversized requests
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[2048];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(uint16_t port, const std::string& path) {
  return HttpExchange(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

// Splits "HTTP/1.0 200 OK\r\nheaders\r\n\r\nbody" into status line + body.
std::pair<std::string, std::string> SplitResponse(const std::string& raw) {
  size_t line_end = raw.find("\r\n");
  size_t body_start = raw.find("\r\n\r\n");
  SSDB_CHECK(line_end != std::string::npos &&
             body_start != std::string::npos)
      << "unparseable response: " << raw;
  return {raw.substr(0, line_end), raw.substr(body_start + 4)};
}

TEST(AdminHttpTest, ServesRegisteredRoutesAsParseableJson) {
  AdminOptions options;  // port 0: ephemeral
  AdminHttpServer admin(options);
  int stats_calls = 0;
  admin.Route("/v1/stats", [&stats_calls] {
    ++stats_calls;
    return std::string(R"({"requests_handled":42,"build":"test"})");
  });
  admin.Route("/v1/servers",
              [] { return std::string(R"({"servers":[]})"); });
  ASSERT_TRUE(admin.Start().ok());
  ASSERT_NE(admin.port(), 0);  // the ephemeral port was resolved

  auto [status_line, body] = SplitResponse(HttpGet(admin.port(), "/v1/stats"));
  EXPECT_EQ(status_line, "HTTP/1.0 200 OK");
  auto doc = ParseJson(body);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString() << " body: " << body;
  EXPECT_EQ(doc->GetUint("requests_handled"), 42u);
  EXPECT_EQ(doc->GetString("build"), "test");
  EXPECT_EQ(stats_calls, 1);

  // Query strings are stripped; routes are exact paths.
  auto [line2, body2] =
      SplitResponse(HttpGet(admin.port(), "/v1/servers?verbose=1"));
  EXPECT_EQ(line2, "HTTP/1.0 200 OK");
  EXPECT_TRUE(ParseJson(body2).ok());

  EXPECT_EQ(admin.requests_served(), 2u);
  admin.Shutdown();
  admin.Shutdown();  // idempotent
}

TEST(AdminHttpTest, RejectsUnknownPathsMethodsAndMalformedRequests) {
  AdminHttpServer admin;
  admin.Route("/v1/stats", [] { return std::string("{}"); });
  ASSERT_TRUE(admin.Start().ok());

  auto [not_found, nf_body] = SplitResponse(HttpGet(admin.port(), "/nope"));
  EXPECT_NE(not_found.find("404"), std::string::npos);
  auto nf_doc = ParseJson(nf_body);  // even errors are parseable JSON
  ASSERT_TRUE(nf_doc.ok());
  EXPECT_FALSE(nf_doc->GetString("error").empty());

  auto [post, post_body] = SplitResponse(
      HttpExchange(admin.port(), "POST /v1/stats HTTP/1.0\r\n\r\n"));
  EXPECT_NE(post.find("405"), std::string::npos);
  EXPECT_NE(post_body.find("GET only"), std::string::npos);

  auto [garbage, garbage_body] =
      SplitResponse(HttpExchange(admin.port(), "no-spaces-here\r\n\r\n"));
  EXPECT_NE(garbage.find("400"), std::string::npos);
  EXPECT_NE(garbage_body.find("malformed"), std::string::npos);
}

TEST(AdminHttpTest, RejectsOversizedRequestsAtTheCap) {
  AdminOptions options;
  options.max_request_bytes = 256;
  AdminHttpServer admin(options);
  admin.Route("/v1/stats", [] { return std::string("{}"); });
  ASSERT_TRUE(admin.Start().ok());

  // No header terminator: the server must give up at the cap, not buffer.
  std::string flood(4096, 'A');
  std::string response = HttpExchange(admin.port(), flood);
  EXPECT_NE(response.find("400"), std::string::npos);
  EXPECT_NE(response.find("size cap"), std::string::npos);

  // The server survives and keeps answering.
  auto [ok_line, ok_body] = SplitResponse(HttpGet(admin.port(), "/v1/stats"));
  EXPECT_EQ(ok_line, "HTTP/1.0 200 OK");
  EXPECT_EQ(ok_body, "{}");
}

TEST(AdminHttpTest, LiveServerStatsSnapshotRoundTripsThroughJson) {
  LiveServer live("admin_stats");
  AdminHttpServer admin;
  admin.Route("/v1/stats",
              [&live] { return live.server->Snapshot().ToJson(); });
  ASSERT_TRUE(admin.Start().ok());

  // Drive one real request through the data plane first.
  auto channel = rpc::ConnectUnix(live.path);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(rpc::Ping(channel->get()).ok());
  (*channel)->Close();

  auto [line, body] = SplitResponse(HttpGet(admin.port(), "/v1/stats"));
  EXPECT_EQ(line, "HTTP/1.0 200 OK");
  auto doc = ParseJson(body);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString() << " body: " << body;
  EXPECT_EQ(doc->GetString("build"), rpc::kServerBuild);
  EXPECT_GE(doc->GetUint("requests_handled"), 1u);
  EXPECT_GE(doc->GetUint("connections_accepted"), 1u);
  EXPECT_GE(doc->GetUint("threads"), 1u);
  EXPECT_FALSE(doc->GetString("poller").empty());
  // The shutdown log and the admin body are the SAME snapshot type.
  EXPECT_FALSE(live.server->Snapshot().ToText().empty());
}

}  // namespace
}  // namespace ssdb
