// Quickstart: encode a small XML document into a secret-shared encrypted
// database and query it — the complete pipeline of the paper in ~60 lines.
//
//   $ ./quickstart
//
// Walks through: field setup, tag map, seed (the only secret), encoding,
// and both search strategies under both matching rules.

#include <cstdio>

#include "core/database.h"

int main() {
  using namespace ssdb;

  // 1. Field F_83 (the paper's choice: 77 DTD tags fit in 82 non-zero
  //    values with spares).
  auto field = gf::Field::Make(83);
  if (!field.ok()) {
    std::fprintf(stderr, "field: %s\n", field.status().ToString().c_str());
    return 1;
  }

  // 2. The document to outsource.
  const char* xml =
      "<library>"
      "  <shelf>"
      "    <book><title/><author/></book>"
      "    <book><title/></book>"
      "  </shelf>"
      "  <archive>"
      "    <box><book><title/></book></box>"
      "  </archive>"
      "</library>";

  // 3. Secret mapping tag -> F_83 \ {0} and the secret PRG seed. Together
  //    they are the entire client-side key material.
  auto map = mapping::TagMap::FromNames(
      {"library", "shelf", "book", "title", "author", "archive", "box"},
      *field);
  prg::Seed seed = prg::Seed::Generate();

  // 4. Encode: every element becomes a polynomial split into a pseudorandom
  //    client share (regenerable from the seed) and a stored server share.
  auto db = core::EncryptedXmlDatabase::Encode(xml, *map, seed,
                                               core::DatabaseOptions{});
  if (!db.ok()) {
    std::fprintf(stderr, "encode: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("encoded %llu nodes, %llu share bytes\n",
              (unsigned long long)(*db)->encode_result().node_count,
              (unsigned long long)(*db)->encode_result().share_bytes);

  // 5. Query with both engines and both matching rules.
  const char* queries[] = {"/library//book", "/library/shelf/book/title",
                           "//box//title"};
  for (const char* q : queries) {
    for (auto engine : {core::EngineKind::kSimple,
                        core::EngineKind::kAdvanced}) {
      for (auto mode : {query::MatchMode::kContainment,
                        query::MatchMode::kEquality}) {
        auto result = (*db)->Query(q, engine, mode);
        if (!result.ok()) {
          std::fprintf(stderr, "query: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        std::printf(
            "%-28s %-8s %-10s -> %zu node(s), %llu evaluations\n", q,
            engine == core::EngineKind::kSimple ? "simple" : "advanced",
            query::MatchModeName(mode).data(), result->nodes.size(),
            (unsigned long long)result->stats.eval.evaluations);
      }
    }
  }

  std::printf(
      "\nNote: non-strict (containment) results may over-approximate —\n"
      "that is the accuracy trade-off fig. 7 of the paper measures.\n");
  return 0;
}
