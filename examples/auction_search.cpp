// Auction search: the paper's evaluation scenario end to end — generate an
// XMark-style auction document, encrypt it, and compare the two search
// strategies on the paper's own Table 2 queries.
//
//   $ ./auction_search [target_kb]      (default 256 KB of XML)

#include <cstdio>
#include <cstdlib>

#include "core/database.h"
#include "util/stopwatch.h"
#include "xmark/generator.h"

int main(int argc, char** argv) {
  using namespace ssdb;

  uint64_t target_kb = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;

  // Generate the plaintext auction database.
  xmark::GeneratorOptions gen;
  gen.target_bytes = target_kb << 10;
  auto generated = xmark::GenerateAuctionDocument(gen);
  std::printf("generated %zu bytes of XML (%llu persons, %llu items, %llu "
              "open auctions)\n",
              generated.xml.size(),
              (unsigned long long)generated.person_count,
              (unsigned long long)generated.item_count,
              (unsigned long long)generated.open_auction_count);

  // Key material: map from the paper's appendix DTD + a fresh seed.
  auto field = *gf::Field::Make(83);
  auto map = core::EncryptedXmlDatabase::TagMapForDtd(xmark::AuctionDtd(),
                                                      field, false);
  if (!map.ok()) {
    std::fprintf(stderr, "%s\n", map.status().ToString().c_str());
    return 1;
  }
  prg::Seed seed = prg::Seed::Generate();

  Stopwatch encode_watch;
  auto db = core::EncryptedXmlDatabase::Encode(generated.xml, *map, seed,
                                               core::DatabaseOptions{});
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("encoded %llu nodes in %.2fs\n\n",
              (unsigned long long)(*db)->encode_result().node_count,
              encode_watch.ElapsedSeconds());

  const char* queries[] = {
      "/site//europe/item",
      "/site//europe//item",
      "/site/*/person//city",
      "/*/*/open_auction/bidder/date",
      "//bidder/date",
  };
  std::printf("%-34s %-10s %-10s %-12s %-10s\n", "query (strict matching)",
              "engine", "results", "evaluations", "time(ms)");
  for (const char* q : queries) {
    for (auto engine :
         {core::EngineKind::kSimple, core::EngineKind::kAdvanced}) {
      auto result = (*db)->Query(q, engine, query::MatchMode::kEquality);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      std::printf("%-34s %-10s %-10zu %-12llu %-10.1f\n", q,
                  engine == core::EngineKind::kSimple ? "simple"
                                                      : "advanced",
                  result->nodes.size(),
                  (unsigned long long)result->stats.eval.evaluations,
                  result->stats.seconds * 1e3);
    }
  }
  std::printf("\nThe advanced engine's look-ahead prunes dead branches —\n"
              "compare the evaluation counts (the paper's fig. 6 claim).\n");
  return 0;
}
