// Trie-enhanced search (§4): text content becomes searchable by encoding
// each data string as a trie of single-character nodes. A query like
//   /people/person/name[contains(text(), "Joan")]
// is rewritten to the character chain //j/o/a/n and answered by the same
// polynomial machinery that matches tags.
//
//   $ ./trie_text_search

#include <cstdio>

#include "core/database.h"
#include "trie/trie_xml.h"
#include "xmark/generator.h"

int main() {
  using namespace ssdb;

  // The trie alphabet (a-z, 0-9, terminal) joins the tag map, so we need a
  // slightly larger field than the tag-only p=83 database.
  auto field = *gf::Field::Make(127);
  std::vector<std::string> names = {"people", "person", "name", "phone"};
  for (const auto& label : trie::TrieAlphabet()) names.push_back(label);
  auto map = mapping::TagMap::FromNames(names, field);
  if (!map.ok()) {
    std::fprintf(stderr, "%s\n", map.status().ToString().c_str());
    return 1;
  }

  const char* xml =
      "<people>"
      "<person><name>Joan Johnson</name><phone>555 1234</phone></person>"
      "<person><name>John Smith</name><phone>555 9876</phone></person>"
      "<person><name>Mary Johnson</name></person>"
      "</people>";

  core::DatabaseOptions options;
  options.p = 127;
  options.encode.trie = true;  // §4: expand text into tries
  prg::Seed seed = prg::Seed::Generate();
  auto db = core::EncryptedXmlDatabase::Encode(xml, *map, seed, options);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("trie-encoded %llu nodes (tags + characters)\n\n",
              (unsigned long long)(*db)->encode_result().node_count);

  const char* queries[] = {
      "/people/person/name[contains(text(), \"Joan\")]",
      "/people/person/name[contains(text(), \"Johnson\")]",
      "/people/person/name[contains(text(), \"Smith\")]",
      "/people/person/name[contains(text(), \"Zoe\")]",
      "/people/person[name[contains(text(), \"Johnson\")]]/phone",
  };
  for (const char* q : queries) {
    auto result = (*db)->Query(q, core::EngineKind::kAdvanced,
                               query::MatchMode::kEquality);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", q,
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-55s -> %zu match(es)\n", q, result->nodes.size());
  }

  std::printf(
      "\nThe server stores only polynomial shares over characters — it\n"
      "cannot tell \"Joan\" from any other word, yet the query found it.\n");
  return 0;
}
