// Client/server deployment (fig. 3): the server process holds only the
// encrypted store (pre/post/parent + server shares) and serves the filter
// protocol over a unix socket; the client holds the seed + map and runs
// queries remotely — the paper's RMI architecture, minus Java.
//
//   $ ./remote_demo

#include <unistd.h>

#include <cstdio>
#include <thread>

#include "core/database.h"
#include "rpc/socket_channel.h"
#include "util/hex.h"
#include "xmark/generator.h"

int main() {
  using namespace ssdb;

  // --- "Server machine": encode and serve. ---
  xmark::GeneratorOptions gen;
  gen.target_bytes = 64 << 10;
  auto generated = xmark::GenerateAuctionDocument(gen);

  auto field = *gf::Field::Make(83);
  auto map = *core::EncryptedXmlDatabase::TagMapForDtd(xmark::AuctionDtd(),
                                                       field, false);
  prg::Seed seed = prg::Seed::Generate();

  auto server_db = core::EncryptedXmlDatabase::Encode(
      generated.xml, map, seed, core::DatabaseOptions{});
  if (!server_db.ok()) {
    std::fprintf(stderr, "%s\n", server_db.status().ToString().c_str());
    return 1;
  }

  // Show what the server actually sees: structure plus opaque shares.
  {
    auto row = (*server_db)->store()->GetByPre(2);
    if (row.ok()) {
      std::printf("server's view of node pre=2: post=%u parent=%u share=%s"
                  "...\n\n",
                  row->post, row->parent,
                  HexEncode(row->share.substr(0, 16)).c_str());
    }
  }

  std::string socket_path =
      "/tmp/ssdb_remote_demo_" + std::to_string(::getpid()) + ".sock";
  auto listener = rpc::UnixServerSocket::Listen(socket_path);
  if (!listener.ok()) {
    std::fprintf(stderr, "%s\n", listener.status().ToString().c_str());
    return 1;
  }
  std::thread server_thread([&] {
    auto channel = (*listener)->Accept();
    if (!channel.ok()) return;
    (*server_db)->Serve(channel->get());
  });

  // --- "Client machine": connect with seed + map only. ---
  auto channel = rpc::ConnectUnix(socket_path);
  if (!channel.ok()) {
    std::fprintf(stderr, "%s\n", channel.status().ToString().c_str());
    return 1;
  }
  auto client_db = core::EncryptedXmlDatabase::ConnectRemote(
      std::move(*channel), map, seed, 83, 1);
  if (!client_db.ok()) {
    std::fprintf(stderr, "%s\n", client_db.status().ToString().c_str());
    return 1;
  }

  for (const char* q : {"/site/people/person", "/site/*/person//city",
                        "//bidder/date"}) {
    auto result = (*client_db)
                      ->Query(q, core::EngineKind::kAdvanced,
                              query::MatchMode::kEquality);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("remote query %-28s -> %zu result(s), %llu server calls\n",
                q, result->nodes.size(),
                (unsigned long long)result->stats.eval.server_calls);
  }

  // Drop the client (closes the channel); the server loop exits on EOF.
  client_db->reset();
  server_thread.join();
  std::printf("\nserver shut down cleanly; it never saw a tag name, a\n"
              "query string, or a result.\n");
  return 0;
}
