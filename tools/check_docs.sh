#!/usr/bin/env bash
# Documentation consistency checks (CI docs job):
#   1. Every intra-repo markdown link in *.md resolves to a real file.
#   2. Every `## §N` section heading in DESIGN.md is cited by at least one
#      source file (as `DESIGN.md §N` / `see DESIGN.md §N`), and every
#      `DESIGN.md §N` citation in the sources names a section that exists —
#      so § citations resolve both ways.
#
# Run from anywhere inside the repository.

set -u
cd "$(dirname "$0")/.."

fail=0

# --- 1. intra-repo markdown links ------------------------------------------
while IFS=: read -r file link; do
  # Strip anchors and skip external / mailto links.
  target="${link%%#*}"
  case "$target" in
    http://*|https://*|mailto:*|"") continue ;;
  esac
  dir="$(dirname "$file")"
  if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
    echo "BROKEN LINK: $file -> $link"
    fail=1
  fi
done < <(grep -o '\[[^]]*\]([^)]*)' --include='*.md' -r . \
           --exclude-dir=build --exclude-dir=.git --exclude=SNIPPETS.md \
         | sed 's/^\([^:]*\):\[[^]]*\](\([^)]*\))$/\1:\2/')

# --- 2. DESIGN.md § sections vs source citations ---------------------------
sections="$(grep -o '^## §[0-9]*' DESIGN.md | grep -o '§[0-9]*' | sort -u)"
if [ -z "$sections" ]; then
  echo "NO SECTIONS: DESIGN.md has no '## §N' headings"
  fail=1
fi

for section in $sections; do
  if ! grep -rq "DESIGN.md ${section}\b" src tools bench tests examples; then
    echo "UNCITED SECTION: DESIGN.md $section is cited by no source file"
    fail=1
  fi
done

while IFS=: read -r file cited; do
  if ! printf '%s\n' "$sections" | grep -qx "$cited"; then
    echo "DANGLING CITATION: $file cites DESIGN.md $cited (no such section)"
    fail=1
  fi
done < <(grep -ro 'DESIGN.md §[0-9][0-9]*' src tools bench tests examples \
         | sed 's/DESIGN.md //' | sort -u)

if [ "$fail" -eq 0 ]; then
  echo "docs OK: links resolve, § citations resolve both ways"
fi
exit "$fail"
