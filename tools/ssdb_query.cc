// ssdb_query: runs XPath-subset queries against an encrypted database file
// (local) or a running ssdb_server (remote).
//
//   ssdb_query --db db.ssdb --map map.properties --seed seed.key
//              [--engine simple|advanced] [--mode strict|nonstrict]
//              [--p 83] [--e 1] "QUERY" ["QUERY" ...]
//   ssdb_query --connect /tmp/ssdb.sock --map ... --seed ... "QUERY"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/database.h"
#include "rpc/client.h"
#include "rpc/socket_channel.h"
#include "storage/table.h"
#include "tools/tool_util.h"

int main(int argc, char** argv) {
  using namespace ssdb;
  tools::Args args(argc, argv);
  std::string db_path = args.Get("--db", "");
  std::string connect = args.Get("--connect", "");
  std::string map_path = args.Get("--map", "map.properties");
  std::string seed_path = args.Get("--seed", "seed.key");
  uint32_t p = args.GetInt("--p", 83);
  uint32_t e = args.GetInt("--e", 1);
  bool advanced = args.Get("--engine", "advanced") != "simple";
  bool strict = args.Get("--mode", "strict") != "nonstrict";

  std::vector<std::string> queries;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '/') queries.push_back(argv[i]);
  }
  if (queries.empty() || (db_path.empty() && connect.empty())) {
    std::fprintf(stderr,
                 "usage: ssdb_query (--db DB.ssdb | --connect SOCK) "
                 "--map MAP --seed SEED [--engine simple|advanced] "
                 "[--mode strict|nonstrict] \"/site//query\" ...\n");
    return 1;
  }

  auto field = gf::Field::Make(p, e);
  if (!field.ok()) return tools::Fail(field.status());
  auto map = mapping::TagMap::FromFile(map_path, *field);
  if (!map.ok()) return tools::Fail(map.status());
  auto seed = prg::Seed::LoadFromFile(seed_path);
  if (!seed.ok()) return tools::Fail(seed.status());

  // Build the client filter stack over either a local store or a socket.
  gf::Ring ring(*field);
  std::unique_ptr<storage::NodeStore> store;
  std::unique_ptr<filter::ServerFilter> server;
  if (!connect.empty()) {
    auto channel = rpc::ConnectUnix(connect);
    if (!channel.ok()) return tools::Fail(channel.status());
    server = std::make_unique<rpc::RemoteServerFilter>(ring,
                                                       std::move(*channel));
  } else {
    auto disk = storage::DiskNodeStore::Open(db_path);
    if (!disk.ok()) return tools::Fail(disk.status());
    store = std::move(*disk);
    server = std::make_unique<filter::LocalServerFilter>(ring, store.get());
  }
  filter::ClientFilter client(ring, prg::Prg(*seed), server.get());
  query::SimpleEngine simple(&client, &*map);
  query::AdvancedEngine adv(&client, &*map);
  query::QueryEngine* engine =
      advanced ? static_cast<query::QueryEngine*>(&adv)
               : static_cast<query::QueryEngine*>(&simple);
  query::MatchMode mode =
      strict ? query::MatchMode::kEquality : query::MatchMode::kContainment;

  for (const std::string& text : queries) {
    auto parsed = query::ParseQuery(text);
    if (!parsed.ok()) return tools::Fail(parsed.status());
    query::QueryStats stats;
    auto result = engine->Execute(*parsed, mode, &stats);
    if (!result.ok()) return tools::Fail(result.status());
    std::printf("%s  [%s/%s]\n", text.c_str(), engine->name().data(),
                query::MatchModeName(mode).data());
    std::printf("  %zu result(s) in %.1f ms, %llu evaluations, %llu server "
                "calls\n",
                result->size(), stats.seconds * 1e3,
                (unsigned long long)stats.eval.evaluations,
                (unsigned long long)stats.eval.server_calls);
    std::printf("  pre:");
    size_t shown = 0;
    for (const auto& node : *result) {
      if (shown++ == 20) {
        std::printf(" ...");
        break;
      }
      std::printf(" %u", node.pre);
    }
    std::printf("\n");
  }
  return 0;
}
