// ssdb_query: runs XPath-subset queries against an encrypted database
// (local) or one or more running ssdb_server processes (remote). In an
// m-server deployment (DESIGN.md §5) every server holds one share slice;
// evaluations fan out to all of them concurrently and the replies are
// summed client-side.
//
//   ssdb_query --db db.ssdb --map map.properties --seed seed.key
//              [--servers m] [--engine simple|advanced]
//              [--mode strict|nonstrict] [--full-verify] [--stats]
//              [--agg count|sum|exists] [--verify-agg]
//              [--p 83] [--e 1] "QUERY" ["QUERY" ...]
//   ssdb_query --connect /tmp/s0.sock[,/tmp/s1.sock,...] --map ... --seed ...
//              "QUERY"
//   ssdb_query (--catalog catalog.json | --router /tmp/router.sock)
//              [--local] [--doc ID | --corpus] [--partial] --map ... --seed ...
//              "count(/site//item)" ...
//
// Corpus mode (DESIGN.md §10): --catalog loads a shard catalog from disk,
// --router fetches it from a running ssdb_router; either opens every
// document's server group through a shard::Router. --doc ID routes the
// queries to one document; otherwise (--corpus, the default) each query
// fans out to every group concurrently and the answers are merged — fetch
// results per document, aggregates additively across shards. --local
// reinterprets catalog slice endpoints as local slice files instead of
// sockets. One --seed covers every document (the shard::Router API also
// takes per-document seeds).
//
// --connect may be repeated or comma-separated, one socket per share slice
// in slice order (slice 0 first). --servers m with --db opens the m local
// slice files of an `ssdb_encode --servers m` run.
//
// Aggregates (DESIGN.md §8): write the aggregate form directly —
// "count(/site//item)", "sum(//person)", "exists(/site/people)" — or pass
// --agg count|sum|exists to wrap every plain query. Aggregates are answered
// server-side over secret shares: each server returns one masked word per
// group instead of the candidate set. --stats prints QueryStats including
// result_size, which for aggregates counts GROUPS (one for a named final
// step, one per mapped tag for '*'), not matched nodes — the matched set
// never reaches the client.
//
// --verify-agg (DESIGN.md §9): aggregates additionally fetch and check the
// verification track (the database must be encoded with ssdb_encode
// --verify-agg), so a tampering server turns the query into an error naming
// the server instead of a silently wrong answer. --stats then also reports
// proof_words and verified.
//
// Mutations (DESIGN.md §12): secret-shared two-phase INSERT/UPDATE/DELETE,
// applied before any queries on the command line — so a query after a --set
// observes the mutated document:
//   --set "PRE TAG"            re-tag node PRE ('-' keeps the tag)
//   --set "PRE TAG new text"   re-tag and/or replace the node's sealed text
//   --insert "PRE <x>...</x>"  insert the fragment as PRE's last child
//   --delete PRE               delete the subtree rooted at PRE
//   --recover                  finish any undecided prepared txn first
// Each may repeat. In corpus mode mutations need --doc (they route to one
// document's group). The database must be encoded with aggregate columns.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "agg/aggregation.h"
#include "core/database.h"
#include "encode/reshare.h"
#include "filter/multi_server_filter.h"
#include "rpc/client.h"
#include "rpc/multi_session.h"
#include "rpc/socket_channel.h"
#include "shard/catalog.h"
#include "shard/catalog_client.h"
#include "shard/router.h"
#include "storage/table.h"
#include "tools/tool_util.h"

int main(int argc, char** argv) {
  using namespace ssdb;
  tools::FlagSet flags("ssdb_query",
                       "(--db DB.ssdb [--servers m] | --connect SOCK[,...] | "
                       "--catalog CATALOG.json | --router SOCK) "
                       "--map MAP --seed SEED \"QUERY\" ...");
  const std::string* db_flag =
      flags.String("db", "", "encrypted database (or slice base) file");
  const std::vector<std::string>* connect_flag = flags.List(
      "connect", "share-server socket per slice, in slice order");
  const std::string* map_flag =
      flags.String("map", "map.properties", "tag map file (key material)");
  const std::string* seed_flag =
      flags.String("seed", "seed.key", "PRG seed file (key material)");
  const uint32_t* p_flag = flags.Uint("p", 83, "field characteristic");
  const uint32_t* e_flag = flags.Uint("e", 1, "field extension degree");
  const uint32_t* servers_flag =
      flags.Uint("servers", 1, "local slice files to open with --db");
  const std::string* engine_flag =
      flags.String("engine", "advanced", "query engine: simple or advanced");
  const std::string* mode_flag =
      flags.String("mode", "strict", "match mode: strict or nonstrict");
  const bool* full_verify_flag =
      flags.Bool("full-verify", "verify every recovered share");
  const bool* stats_flag = flags.Bool("stats", "print QueryStats per query");
  const bool* verify_agg_flag = flags.Bool(
      "verify-agg", "check the aggregate verification track (DESIGN.md §9)");
  const std::string* agg_flag = flags.String(
      "agg", "", "wrap plain queries: count, sum, or exists");
  const std::string* catalog_flag =
      flags.String("catalog", "", "shard catalog file (corpus mode)");
  const std::string* router_flag =
      flags.String("router", "", "ssdb_router socket (corpus mode)");
  const std::string* doc_flag =
      flags.String("doc", "", "route to one document id (corpus mode)");
  flags.Bool("corpus", "query every document (corpus-mode default)");
  const bool* local_flag = flags.Bool(
      "local", "treat catalog slice endpoints as local files");
  const bool* partial_flag = flags.Bool(
      "partial", "corpus queries tolerate unreachable documents and report "
                 "them as missing (DESIGN.md §11)");
  const std::vector<std::string>* set_flag = flags.List(
      "set", "mutate: \"PRE TAG [TEXT...]\" re-tags node PRE ('-' keeps the "
             "tag) and/or replaces its sealed text (DESIGN.md §12)");
  const std::vector<std::string>* insert_flag = flags.List(
      "insert", "mutate: \"PRE <frag>...</frag>\" inserts the XML fragment "
                "as the last child of node PRE");
  const std::vector<std::string>* delete_flag = flags.List(
      "delete", "mutate: PRE deletes the subtree rooted at node PRE");
  const bool* recover_flag = flags.Bool(
      "recover", "finish any undecided prepared mutation before anything "
                 "else (crash recovery, DESIGN.md §12)");

  Status flags_parsed = flags.Parse(argc, argv);
  if (flags.help_requested()) {
    std::fputs(flags.Help().c_str(), stdout);
    return tools::kExitOk;
  }
  if (!flags_parsed.ok()) return tools::UsageError(flags, flags_parsed);

  std::string db_path = *db_flag;
  const std::string& map_path = *map_flag;
  const std::string& seed_path = *seed_flag;
  const std::vector<std::string>& connects = *connect_flag;
  uint32_t p = *p_flag;
  uint32_t e = *e_flag;
  uint32_t servers = *servers_flag;
  bool advanced = *engine_flag != "simple";
  bool strict = *mode_flag != "nonstrict";
  bool show_stats = *stats_flag;
  bool verify_agg = *verify_agg_flag;
  const std::string& agg_wrap = *agg_flag;
  const std::string& catalog_path = *catalog_flag;
  const std::string& router_sock = *router_flag;
  const std::string& doc_id = *doc_flag;

  // A positional is a query iff the parser accepts it — the one source of
  // truth for plain and aggregate forms alike. --agg wraps only queries
  // that are not already aggregates.
  std::vector<std::string> queries;
  for (const std::string& arg : flags.positionals()) {
    auto parsed = query::ParseQuery(arg);
    bool aggregate_form =
        parsed.ok() && parsed->aggregate != query::Aggregate::kNone;
    // '/'-prefixed args always pass through (a malformed one reports its
    // parse error below instead of vanishing).
    if (arg[0] != '/' && !aggregate_form) continue;
    queries.push_back(agg_wrap.empty() || aggregate_form
                          ? arg
                          : agg_wrap + "(" + arg + ")");
  }
  const bool corpus_mode = !catalog_path.empty() || !router_sock.empty();

  // Mutation commands (DESIGN.md §12), decoded up front so a malformed spec
  // fails before any server is dialed. Kept in kind order: sets, inserts,
  // deletes — each list preserves its command-line order.
  struct SetCmd {
    uint32_t pre = 0;
    std::string tag;                    // empty = keep the tag
    std::optional<std::string> text;    // nullopt = keep the text
  };
  struct InsertCmd {
    uint32_t pre = 0;
    std::string fragment;
  };
  auto parse_pre = [](const std::string& text, uint32_t* pre,
                      std::string* rest) {
    char* end = nullptr;
    unsigned long long value = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || value == 0 || value > 0xffffffffull) {
      return false;
    }
    while (*end == ' ') ++end;
    *pre = static_cast<uint32_t>(value);
    *rest = std::string(end);
    return true;
  };
  std::vector<SetCmd> sets;
  for (const std::string& spec : *set_flag) {
    SetCmd cmd;
    std::string rest;
    if (!parse_pre(spec, &cmd.pre, &rest) || rest.empty()) {
      return tools::UsageError(flags,
                               "--set needs \"PRE TAG [TEXT...]\": " + spec);
    }
    size_t space = rest.find(' ');
    std::string tag = rest.substr(0, space);
    if (tag != "-") cmd.tag = tag;
    if (space != std::string::npos) cmd.text = rest.substr(space + 1);
    if (cmd.tag.empty() && !cmd.text.has_value()) {
      return tools::UsageError(
          flags, "--set \"" + spec + "\" changes neither tag nor text");
    }
    sets.push_back(std::move(cmd));
  }
  std::vector<InsertCmd> inserts;
  for (const std::string& spec : *insert_flag) {
    InsertCmd cmd;
    if (!parse_pre(spec, &cmd.pre, &cmd.fragment) || cmd.fragment.empty()) {
      return tools::UsageError(
          flags, "--insert needs \"PRE <fragment.../>\": " + spec);
    }
    inserts.push_back(std::move(cmd));
  }
  std::vector<uint32_t> deletes;
  for (const std::string& spec : *delete_flag) {
    uint32_t pre = 0;
    std::string rest;
    if (!parse_pre(spec, &pre, &rest) || !rest.empty()) {
      return tools::UsageError(flags, "--delete needs a node PRE: " + spec);
    }
    deletes.push_back(pre);
  }
  const bool have_mutations = !sets.empty() || !inserts.empty() ||
                              !deletes.empty() || *recover_flag;

  if (queries.empty() && !have_mutations) {
    return tools::UsageError(flags, "no query given");
  }
  if (corpus_mode && have_mutations && doc_id.empty()) {
    return tools::UsageError(
        flags, "mutations route to one document: add --doc ID");
  }
  if (db_path.empty() && connects.empty() && !corpus_mode) {
    return tools::UsageError(
        flags, "one of --db, --connect, --catalog, or --router is required");
  }
  if (servers == 0) {
    return tools::UsageError(flags, "--servers must be >= 1");
  }
  if (!agg_wrap.empty() && agg_wrap != "count" && agg_wrap != "sum" &&
      agg_wrap != "exists") {
    return tools::UsageError(flags, "--agg must be count, sum, or exists");
  }

  auto field = gf::Field::Make(p, e);
  if (!field.ok()) return tools::Fail(field.status());
  auto map = mapping::TagMap::FromFile(map_path, *field);
  if (!map.ok()) return tools::Fail(map.status());
  auto seed = prg::Seed::LoadFromFile(seed_path);
  if (!seed.ok()) return tools::Fail(seed.status());

  if (corpus_mode) {
    shard::ShardCatalog catalog;
    if (!router_sock.empty()) {
      auto fetched = shard::FetchCatalogUnix(router_sock);
      if (!fetched.ok()) return tools::Fail(fetched.status());
      catalog = std::move(*fetched);
    } else {
      auto loaded = shard::ShardCatalog::Load(catalog_path);
      if (!loaded.ok()) return tools::Fail(loaded.status());
      catalog = std::move(*loaded);
    }
    core::CorpusOptions copts;
    copts.p = p;
    copts.e = e;
    copts.local = *local_flag;
    copts.engine = advanced ? core::EngineKind::kAdvanced
                            : core::EngineKind::kSimple;
    copts.verify_aggregate = verify_agg;
    copts.partial_ok = *partial_flag;
    auto router = shard::Router::Open(std::move(catalog), &*map, *seed, {},
                                      copts);
    if (!router.ok()) return tools::Fail(router.status());
    for (const shard::MissingDoc& missing : (*router)->unreachable()) {
      std::fprintf(stderr, "warning: %s\n",
                   missing.error.ToString().c_str());
    }
    query::MatchMode corpus_match = strict ? query::MatchMode::kEquality
                                           : query::MatchMode::kContainment;

    // Mutations route to one document's group (--doc, enforced above) and
    // run before the queries so a query on the same command line observes
    // the mutated document.
    if (*recover_flag) {
      Status recovered = (*router)->RecoverDoc(doc_id);
      if (!recovered.ok()) return tools::Fail(recovered);
      std::printf("recovered pending mutations  [doc %s]\n", doc_id.c_str());
    }
    auto print_doc_mutation = [](const char* what, uint32_t pre,
                                 const shard::DocMutation& done) {
      std::printf("%s pre=%u committed  [doc %s, group %u]: version=%llu "
                  "(path=%llu subtree=%llu children=%llu bytes=%llu)\n",
                  what, pre, done.doc_id.c_str(), done.group,
                  (unsigned long long)done.version,
                  (unsigned long long)done.stats.path_nodes,
                  (unsigned long long)done.stats.subtree_nodes,
                  (unsigned long long)done.stats.children_fetched,
                  (unsigned long long)done.stats.reshared_bytes);
    };
    for (const SetCmd& cmd : sets) {
      auto done = (*router)->UpdateDoc(doc_id, cmd.pre, cmd.tag, cmd.text);
      if (!done.ok()) return tools::Fail(done.status());
      print_doc_mutation("update", cmd.pre, *done);
    }
    for (const InsertCmd& cmd : inserts) {
      auto done = (*router)->InsertDoc(doc_id, cmd.pre, cmd.fragment);
      if (!done.ok()) return tools::Fail(done.status());
      print_doc_mutation("insert", cmd.pre, *done);
    }
    for (uint32_t pre : deletes) {
      auto done = (*router)->DeleteDoc(doc_id, pre);
      if (!done.ok()) return tools::Fail(done.status());
      print_doc_mutation("delete", pre, *done);
    }

    auto print_aggregate = [&](const std::string& text,
                               const query::Query& parsed,
                               const agg::Result& result,
                               const query::QueryStats& stats) {
      if (parsed.aggregate == query::Aggregate::kExists) {
        std::printf("  exists: %s in %.1f ms, %llu round trips\n",
                    result.Exists() ? "true" : "false", stats.seconds * 1e3,
                    (unsigned long long)stats.eval.round_trips);
      } else if (result.group_by) {
        std::printf("  %zu group(s) in %.1f ms, %llu round trips\n",
                    result.values.size(), stats.seconds * 1e3,
                    (unsigned long long)stats.eval.round_trips);
        for (size_t g = 0; g < result.values.size(); ++g) {
          if (result.values[g] == 0) continue;
          std::printf("    %-20s %llu\n", result.group_names[g].c_str(),
                      (unsigned long long)result.values[g]);
        }
      } else {
        std::printf("  %s = %llu in %.1f ms, %llu round trips\n",
                    query::AggregateName(parsed.aggregate).data(),
                    (unsigned long long)result.Total(), stats.seconds * 1e3,
                    (unsigned long long)stats.eval.round_trips);
      }
      if (show_stats) {
        std::printf("  stats: result_size=%llu (groups), round_trips=%llu, "
                    "server_calls=%llu, evaluations=%llu\n",
                    (unsigned long long)stats.result_size,
                    (unsigned long long)stats.eval.round_trips,
                    (unsigned long long)stats.eval.server_calls,
                    (unsigned long long)stats.eval.evaluations);
        if (verify_agg) {
          std::printf("  proof: proof_words=%llu, verified=%s\n",
                      (unsigned long long)result.proof_words,
                      result.verified ? "true" : "false");
        }
      }
      (void)text;
    };

    for (const std::string& text : queries) {
      auto parsed = query::ParseQuery(text);
      if (!parsed.ok()) return tools::Fail(parsed.status());

      if (!doc_id.empty()) {
        auto result = (*router)->QueryDoc(doc_id, *parsed, corpus_match);
        if (!result.ok()) return tools::Fail(result.status());
        std::printf("%s  [doc %s, group %u]\n", text.c_str(),
                    result->doc_id.c_str(), result->group);
        if (result->is_aggregate) {
          print_aggregate(text, *parsed, result->aggregate, result->stats);
        } else {
          std::printf("  %zu result(s) in %.1f ms\n  pre:",
                      result->nodes.size(), result->stats.seconds * 1e3);
          size_t shown = 0;
          for (const auto& node : result->nodes) {
            if (shown++ == 20) { std::printf(" ..."); break; }
            std::printf(" %u", node.pre);
          }
          std::printf("\n");
        }
        continue;
      }

      auto result = (*router)->QueryCorpus(*parsed, corpus_match);
      if (!result.ok()) return tools::Fail(result.status());
      std::printf("%s  [corpus: %zu doc(s), %zu group(s)%s]\n", text.c_str(),
                  result->documents, result->groups,
                  result->missing.empty() ? "" : ", PARTIAL");
      for (const shard::MissingDoc& missing : result->missing) {
        std::printf("  missing %s (group %u): %s\n", missing.doc_id.c_str(),
                    missing.group, missing.error.ToString().c_str());
      }
      if (result->is_aggregate) {
        print_aggregate(text, *parsed, result->aggregate, result->stats);
      } else {
        std::printf("  merged in %.1f ms, %llu round trips (straggler)\n",
                    result->stats.seconds * 1e3,
                    (unsigned long long)result->stats.eval.round_trips);
        for (const auto& doc : result->nodes) {
          std::printf("  %s: %zu result(s); pre:", doc.doc_id.c_str(),
                      doc.nodes.size());
          size_t shown = 0;
          for (const auto& node : doc.nodes) {
            if (shown++ == 20) { std::printf(" ..."); break; }
            std::printf(" %u", node.pre);
          }
          std::printf("\n");
        }
      }
    }
    return tools::kExitOk;
  }

  // Build the client filter stack over local slice stores or sockets — one
  // backend per share slice, fanned out through a MultiServerFilter when
  // there is more than one.
  gf::Ring ring(*field);
  std::vector<std::unique_ptr<storage::NodeStore>> stores;
  std::vector<std::unique_ptr<filter::ServerFilter>> backends;
  std::unique_ptr<rpc::MultiServerSession> session;
  std::unique_ptr<filter::ServerFilter> server;
  filter::ServerFilter* server_view = nullptr;

  if (!connects.empty()) {
    if (connects.size() == 1) {
      auto channel = rpc::ConnectUnix(connects[0]);
      if (!channel.ok()) return tools::Fail(channel.status());
      server = std::make_unique<rpc::RemoteServerFilter>(ring,
                                                         std::move(*channel));
      server_view = server.get();
    } else {
      auto connected = rpc::MultiServerSession::ConnectUnix(ring, connects);
      if (!connected.ok()) return tools::Fail(connected.status());
      session = std::move(*connected);
      server_view = session->filter();
    }
  } else {
    std::vector<filter::ServerFilter*> raw_backends;
    for (uint32_t i = 0; i < servers; ++i) {
      auto disk = storage::DiskNodeStore::Open(
          core::ShareSlicePath(db_path, i, servers));
      if (!disk.ok()) return tools::Fail(disk.status());
      stores.push_back(std::move(*disk));
      backends.push_back(std::make_unique<filter::LocalServerFilter>(
          ring, stores.back().get()));
      raw_backends.push_back(backends.back().get());
    }
    if (servers == 1) {
      server = std::move(backends[0]);
      backends.clear();
    } else {
      server = std::make_unique<filter::MultiServerFilter>(
          ring, std::move(raw_backends));
    }
    server_view = server.get();
  }
  filter::ClientFilter client(ring, prg::Prg(*seed), server_view);
  client.set_full_verification(*full_verify_flag);

  // Share-sum sanity probe: recover the root's own tag through the
  // verified equality-test division. An incomplete or tampered share sum
  // (too few --connect sockets, a lone socket pointing at one slice of a
  // larger split, a modified slice) fails verification here instead of
  // silently returning wrong results. Runs for every remote connection
  // and every local multi-slice deployment.
  if (!connects.empty() || server_view->ServerCount() > 1) {
    auto root = client.Root();
    if (!root.ok()) return tools::Fail(root.status());
    auto probe = client.RecoverOwnValue(*root);
    if (!probe.ok()) {
      std::fprintf(stderr,
                   "error: share-sum sanity probe failed — are all %zu "
                   "slices of this database connected, in slice order?\n"
                   "  %s\n",
                   connects.empty() ? (size_t)servers : connects.size(),
                   probe.status().ToString().c_str());
      return 1;
    }
  }
  // Mutations (DESIGN.md §12) run before the queries, in kind order:
  // recover, sets, inserts, deletes. Each is a full two-phase drive —
  // prepare on every slice, then commit; a prepare failure aborts.
  if (have_mutations) {
    encode::Mutator mutator(ring, *map, prg::Prg(*seed), server_view);
    if (*recover_flag) {
      for (int round = 0; round < 64; ++round) {
        auto states = server_view->MutationStates();
        if (!states.ok()) return tools::Fail(states.status());
        uint64_t pending = 0;
        uint64_t committed = 0;
        for (const storage::MutationState& st : *states) {
          pending = std::max(pending, st.pending_txn);
          committed = std::max(committed, st.version);
        }
        if (pending == 0) break;
        Status verdict = committed >= pending
                             ? server_view->CommitMutation(pending)
                             : server_view->AbortMutation(pending);
        if (!verdict.ok()) return tools::Fail(verdict);
        std::printf("recovered txn %llu: %s\n",
                    (unsigned long long)pending,
                    committed >= pending ? "committed" : "aborted");
      }
    }
    auto drive = [&](const char* what, uint32_t pre,
                     StatusOr<encode::PlannedMutation> planned) -> Status {
      if (!planned.ok()) return planned.status();
      Status prepared =
          server_view->PrepareMutation(planned->txn, planned->plans);
      if (!prepared.ok()) {
        (void)server_view->AbortMutation(planned->txn);
        return prepared;
      }
      Status committed = server_view->CommitMutation(planned->txn);
      if (!committed.ok()) return committed;
      std::printf("%s pre=%u committed: version=%llu (path=%llu "
                  "subtree=%llu children=%llu bytes=%llu)\n",
                  what, pre, (unsigned long long)planned->txn,
                  (unsigned long long)planned->stats.path_nodes,
                  (unsigned long long)planned->stats.subtree_nodes,
                  (unsigned long long)planned->stats.children_fetched,
                  (unsigned long long)planned->stats.reshared_bytes);
      return Status::OK();
    };
    for (const SetCmd& cmd : sets) {
      Status done = drive("update", cmd.pre,
                          mutator.PlanUpdate(cmd.pre, cmd.tag, cmd.text));
      if (!done.ok()) return tools::Fail(done);
    }
    for (const InsertCmd& cmd : inserts) {
      Status done = drive("insert", cmd.pre,
                          mutator.PlanInsert(cmd.pre, cmd.fragment));
      if (!done.ok()) return tools::Fail(done);
    }
    for (uint32_t pre : deletes) {
      Status done = drive("delete", pre, mutator.PlanDelete(pre));
      if (!done.ok()) return tools::Fail(done);
    }
  }

  query::SimpleEngine simple(&client, &*map);
  query::AdvancedEngine adv(&client, &*map);
  agg::AggregationEngine aggregation(&client, &*map);
  aggregation.set_verify(verify_agg);
  query::QueryEngine* engine =
      advanced ? static_cast<query::QueryEngine*>(&adv)
               : static_cast<query::QueryEngine*>(&simple);
  query::MatchMode mode =
      strict ? query::MatchMode::kEquality : query::MatchMode::kContainment;

  // QueryStats block shared by both query kinds. For aggregates
  // result_size counts groups (the matched node set never reaches the
  // client); for plain queries it counts matched nodes. Under --verify-agg
  // the aggregate line also reports the proof volume and verdict (§9).
  auto print_stats = [&](const query::QueryStats& stats, bool aggregate,
                         const agg::Result* agg_result) {
    if (show_stats) {
      std::printf("  stats: result_size=%llu (%s), round_trips=%llu, "
                  "server_calls=%llu, evaluations=%llu, aggregate_ops=%llu, "
                  "candidates_examined=%llu\n",
                  (unsigned long long)stats.result_size,
                  aggregate ? "groups" : "nodes",
                  (unsigned long long)stats.eval.round_trips,
                  (unsigned long long)stats.eval.server_calls,
                  (unsigned long long)stats.eval.evaluations,
                  (unsigned long long)stats.eval.aggregate_ops,
                  (unsigned long long)stats.candidates_examined);
      if (aggregate && verify_agg && agg_result != nullptr) {
        std::printf("  proof: proof_words=%llu, verified=%s\n",
                    (unsigned long long)agg_result->proof_words,
                    agg_result->verified ? "true" : "false");
      }
    }
    if (stats.eval.per_server_round_trips.size() > 1) {
      std::printf("  per-server trips:");
      for (uint64_t trips : stats.eval.per_server_round_trips) {
        std::printf(" %llu", (unsigned long long)trips);
      }
      std::printf("  (straggler wait %.1f ms)\n",
                  stats.eval.straggler_seconds * 1e3);
    }
  };

  for (const std::string& text : queries) {
    auto parsed = query::ParseQuery(text);
    if (!parsed.ok()) return tools::Fail(parsed.status());

    if (parsed->aggregate != query::Aggregate::kNone) {
      query::QueryStats stats;
      auto result = aggregation.Execute(engine, *parsed, mode, &stats);
      if (!result.ok()) return tools::Fail(result.status());
      std::printf("%s  [%s/%s]\n", text.c_str(), engine->name().data(),
                  query::MatchModeName(mode).data());
      if (parsed->aggregate == query::Aggregate::kExists) {
        std::printf("  exists: %s in %.1f ms, %llu round trips\n",
                    result->Exists() ? "true" : "false", stats.seconds * 1e3,
                    (unsigned long long)stats.eval.round_trips);
      } else if (result->group_by) {
        std::printf("  %zu group(s) in %.1f ms, %llu round trips\n",
                    result->values.size(), stats.seconds * 1e3,
                    (unsigned long long)stats.eval.round_trips);
        for (size_t g = 0; g < result->values.size(); ++g) {
          if (result->values[g] == 0) continue;  // only occupied groups
          std::printf("    %-20s %llu\n", result->group_names[g].c_str(),
                      (unsigned long long)result->values[g]);
        }
      } else {
        std::printf("  %s = %llu in %.1f ms, %llu round trips\n",
                    query::AggregateName(parsed->aggregate).data(),
                    (unsigned long long)result->Total(), stats.seconds * 1e3,
                    (unsigned long long)stats.eval.round_trips);
      }
      print_stats(stats, /*aggregate=*/true, &*result);
      continue;
    }

    query::QueryStats stats;
    auto result = engine->Execute(*parsed, mode, &stats);
    if (!result.ok()) return tools::Fail(result.status());
    std::printf("%s  [%s/%s]\n", text.c_str(), engine->name().data(),
                query::MatchModeName(mode).data());
    std::printf("  %zu result(s) in %.1f ms, %llu evaluations, %llu server "
                "calls, %llu round trips\n",
                result->size(), stats.seconds * 1e3,
                (unsigned long long)stats.eval.evaluations,
                (unsigned long long)stats.eval.server_calls,
                (unsigned long long)stats.eval.round_trips);
    print_stats(stats, /*aggregate=*/false, nullptr);
    std::printf("  pre:");
    size_t shown = 0;
    for (const auto& node : *result) {
      if (shown++ == 20) {
        std::printf(" ...");
        break;
      }
      std::printf(" %u", node.pre);
    }
    std::printf("\n");
  }
  return tools::kExitOk;
}
