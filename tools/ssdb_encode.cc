// ssdb_encode: the paper's MySQLEncode as a command-line tool (§5.1) —
// "acts on three files which are provided on the command-line: a map file,
// a seed file, the original XML document".
//
//   ssdb_encode --map map.properties --seed seed.key --xml doc.xml
//               --out db.ssdb [--p 83] [--e 1] [--trie] [--coeff-domain]
//               [--servers m] [--no-agg] [--verify-agg]
//
// --verify-agg additionally stores the aggregate verification track
// (DESIGN.md §9) on slice 0, letting ssdb_query --verify-agg detect and
// attribute a tampering server. Costs 112·|map| bytes per node.
//
// With --servers m > 1 the additive share is split across m slice files
// (DESIGN.md §5): db.ssdb.s0ofm ... db.ssdb.s(m-1)ofm, one per untrusted
// server. Each slice alone is uniformly random.

#include <cstdio>
#include <string>

#include "core/database.h"
#include "tools/tool_util.h"
#include "util/file_util.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace ssdb;
  tools::Args args(argc, argv);
  std::string map_path = args.Get("--map", "map.properties");
  std::string seed_path = args.Get("--seed", "seed.key");
  std::string xml_path = args.Get("--xml", "");
  std::string out_path = args.Get("--out", "db.ssdb");
  uint32_t p = args.GetInt("--p", 83);
  uint32_t e = args.GetInt("--e", 1);
  uint32_t servers = args.GetInt("--servers", 1);

  if (xml_path.empty() || servers == 0) {
    std::fprintf(stderr,
                 "usage: ssdb_encode --map MAP --seed SEED --xml DOC.xml "
                 "--out DB.ssdb [--p 83] [--e 1] [--trie] [--coeff-domain] "
                 "[--servers m] [--no-agg] [--verify-agg]\n");
    return 1;
  }

  auto field = gf::Field::Make(p, e);
  if (!field.ok()) return tools::Fail(field.status());
  auto map = mapping::TagMap::FromFile(map_path, *field);
  if (!map.ok()) return tools::Fail(map.status());
  auto seed = prg::Seed::LoadFromFile(seed_path);
  if (!seed.ok()) return tools::Fail(seed.status());
  auto xml = ReadFileToString(xml_path);
  if (!xml.ok()) return tools::Fail(xml.status());

  core::DatabaseOptions options;
  options.p = p;
  options.e = e;
  options.backend = core::Backend::kDisk;
  options.disk_path = out_path;
  options.encode.trie = args.Has("--trie");
  options.encode.use_eval_domain = !args.Has("--coeff-domain");
  // DESIGN.md §8: aggregate columns cost 28·|map| bytes per node per slice;
  // --no-agg drops them (and with them server-side count()/sum()/exists()).
  options.encode.aggregate_columns = !args.Has("--no-agg");
  // DESIGN.md §9: the verification track adds 112·|map| bytes per node to
  // slice 0, buying tamper detection with per-server attribution.
  options.encode.verify_aggregate = args.Has("--verify-agg");
  options.servers = servers;
  if (options.encode.verify_aggregate && !options.encode.aggregate_columns) {
    std::fprintf(stderr,
                 "error: --verify-agg needs the aggregate columns "
                 "(drop --no-agg)\n");
    return 1;
  }

  Stopwatch watch;
  auto db = core::EncryptedXmlDatabase::Encode(*xml, *map, *seed, options);
  if (!db.ok()) return tools::Fail(db.status());
  double seconds = watch.ElapsedSeconds();

  auto stats = (*db)->store()->Stats();
  if (!stats.ok()) return tools::Fail(stats.status());
  std::printf("encoded %llu nodes from %s (%s) in %.2fs\n",
              (unsigned long long)stats->node_count, xml_path.c_str(),
              HumanBytes(xml->size()).c_str(), seconds);
  if (options.encode.verify_aggregate) {
    std::printf("verification track (DESIGN.md §9): %s on slice 0\n",
                HumanBytes((*db)->encode_result().verify_bytes).c_str());
  }
  for (uint32_t i = 0; i < servers; ++i) {
    std::string path = core::ShareSlicePath(out_path, i, servers);
    auto slice_stats = (*db)->slice_store(i)->Stats();
    if (!slice_stats.ok()) return tools::Fail(slice_stats.status());
    std::printf("%s %s: data %s, indexes %s, file %s\n",
                servers > 1 ? "slice" : "database", path.c_str(),
                HumanBytes(slice_stats->data_bytes).c_str(),
                HumanBytes(slice_stats->index_bytes).c_str(),
                HumanBytes(slice_stats->file_bytes).c_str());
  }
  return 0;
}
