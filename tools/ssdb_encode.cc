// ssdb_encode: the paper's MySQLEncode as a command-line tool (§5.1) —
// "acts on three files which are provided on the command-line: a map file,
// a seed file, the original XML document".
//
//   ssdb_encode --map map.properties --seed seed.key --xml doc.xml
//               --out db.ssdb [--p 83] [--e 1] [--trie] [--coeff-domain]
//               [--servers m] [--no-agg] [--verify-agg]
//
// --verify-agg additionally stores the aggregate verification track
// (DESIGN.md §9) on slice 0, letting ssdb_query --verify-agg detect and
// attribute a tampering server. Costs 112·|map| bytes per node.
//
// With --servers m > 1 the additive share is split across m slice files
// (DESIGN.md §5): db.ssdb.s0ofm ... db.ssdb.s(m-1)ofm, one per untrusted
// server. Each slice alone is uniformly random.

#include <cstdio>
#include <string>

#include "core/database.h"
#include "tools/tool_util.h"
#include "util/file_util.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace ssdb;
  tools::FlagSet flags("ssdb_encode",
                       "--map MAP --seed SEED --xml DOC.xml --out DB.ssdb");
  const std::string* map_path =
      flags.String("map", "map.properties", "tag map file (key material)");
  const std::string* seed_path =
      flags.String("seed", "seed.key", "PRG seed file (key material)");
  const std::string* xml_path =
      flags.String("xml", "", "XML document to encode (required)");
  const std::string* out_path =
      flags.String("out", "db.ssdb", "output database (or slice base) path");
  const uint32_t* p = flags.Uint("p", 83, "field characteristic");
  const uint32_t* e = flags.Uint("e", 1, "field extension degree");
  const uint32_t* servers =
      flags.Uint("servers", 1, "split the share across m slice files");
  const bool* trie = flags.Bool("trie", "trie-encode tag values");
  const bool* coeff_domain =
      flags.Bool("coeff-domain", "store coefficient- instead of point-domain");
  const bool* no_agg = flags.Bool(
      "no-agg", "drop the aggregate columns (DESIGN.md §8; saves 28·|map| "
                "bytes per node per slice in the side column store — but "
                "disables aggregates and mutations, DESIGN.md §12)");
  const bool* verify_agg = flags.Bool(
      "verify-agg", "store the aggregate verification track (DESIGN.md §9; "
                    "costs 112·|map| bytes per node in slice 0's column "
                    "store; any tag-map size fits — blobs live outside the "
                    "4 KiB heap row, DESIGN.md §12)");

  Status parsed = flags.Parse(argc, argv);
  if (flags.help_requested()) {
    std::fputs(flags.Help().c_str(), stdout);
    return tools::kExitOk;
  }
  if (!parsed.ok()) return tools::UsageError(flags, parsed);
  if (xml_path->empty()) return tools::UsageError(flags, "--xml is required");
  if (*servers == 0) {
    return tools::UsageError(flags, "--servers must be >= 1");
  }
  if (*verify_agg && *no_agg) {
    return tools::UsageError(
        flags, "--verify-agg needs the aggregate columns (drop --no-agg)");
  }

  auto field = gf::Field::Make(*p, *e);
  if (!field.ok()) return tools::Fail(field.status());
  auto map = mapping::TagMap::FromFile(*map_path, *field);
  if (!map.ok()) return tools::Fail(map.status());
  auto seed = prg::Seed::LoadFromFile(*seed_path);
  if (!seed.ok()) return tools::Fail(seed.status());
  auto xml = ReadFileToString(*xml_path);
  if (!xml.ok()) return tools::Fail(xml.status());

  core::DatabaseOptions options;
  options.p = *p;
  options.e = *e;
  options.backend = core::Backend::kDisk;
  options.disk_path = *out_path;
  options.encode.trie = *trie;
  options.encode.use_eval_domain = !*coeff_domain;
  options.encode.aggregate_columns = !*no_agg;
  options.encode.verify_aggregate = *verify_agg;
  options.servers = *servers;

  Stopwatch watch;
  auto db = core::EncryptedXmlDatabase::Encode(*xml, *map, *seed, options);
  if (!db.ok()) return tools::Fail(db.status());
  double seconds = watch.ElapsedSeconds();

  auto stats = (*db)->store()->Stats();
  if (!stats.ok()) return tools::Fail(stats.status());
  std::printf("encoded %llu nodes from %s (%s) in %.2fs\n",
              (unsigned long long)stats->node_count, xml_path->c_str(),
              HumanBytes(xml->size()).c_str(), seconds);
  if (options.encode.verify_aggregate) {
    std::printf("verification track (DESIGN.md §9): %s on slice 0\n",
                HumanBytes((*db)->encode_result().verify_bytes).c_str());
  }
  for (uint32_t i = 0; i < *servers; ++i) {
    std::string path = core::ShareSlicePath(*out_path, i, *servers);
    auto slice_stats = (*db)->slice_store(i)->Stats();
    if (!slice_stats.ok()) return tools::Fail(slice_stats.status());
    std::printf("%s %s: data %s, indexes %s, file %s\n",
                *servers > 1 ? "slice" : "database", path.c_str(),
                HumanBytes(slice_stats->data_bytes).c_str(),
                HumanBytes(slice_stats->index_bytes).c_str(),
                HumanBytes(slice_stats->file_bytes).c_str());
  }
  return tools::kExitOk;
}
