// ssdb_xmlgen: emits a synthetic XMark-style auction document (the paper's
// §6 workload) to stdout or a file.
//
//   ssdb_xmlgen [--kb 1024] [--seed 42] [--out doc.xml] [--dtd]

#include <cstdio>
#include <string>

#include "tools/tool_util.h"
#include "util/file_util.h"
#include "xmark/generator.h"

int main(int argc, char** argv) {
  using namespace ssdb;
  tools::FlagSet flags("ssdb_xmlgen", "[--kb N] [--out doc.xml]");
  const uint32_t* kb_flag =
      flags.Uint("kb", 1024, "approximate document size, KiB");
  const uint32_t* seed_flag = flags.Uint("seed", 42, "generator seed");
  const std::string* out_flag =
      flags.String("out", "", "output file (default: stdout)");
  const bool* dtd_flag =
      flags.Bool("dtd", "print the auction DTD instead of a document");

  Status parsed = flags.Parse(argc, argv);
  if (flags.help_requested()) {
    std::fputs(flags.Help().c_str(), stdout);
    return tools::kExitOk;
  }
  if (!parsed.ok()) return tools::UsageError(flags, parsed);
  if (*dtd_flag) {
    std::fputs(xmark::AuctionDtd().c_str(), stdout);
    return tools::kExitOk;
  }
  xmark::GeneratorOptions options;
  options.target_bytes = static_cast<uint64_t>(*kb_flag) << 10;
  options.seed = *seed_flag;
  auto generated = xmark::GenerateAuctionDocument(options);

  const std::string& out_path = *out_flag;
  if (out_path.empty()) {
    std::fwrite(generated.xml.data(), 1, generated.xml.size(), stdout);
  } else {
    if (auto s = WriteStringToFile(out_path, generated.xml); !s.ok()) {
      return tools::Fail(s);
    }
    std::fprintf(stderr,
                 "wrote %zu bytes to %s (%llu persons, %llu items, %llu "
                 "open auctions, %llu closed auctions)\n",
                 generated.xml.size(), out_path.c_str(),
                 (unsigned long long)generated.person_count,
                 (unsigned long long)generated.item_count,
                 (unsigned long long)generated.open_auction_count,
                 (unsigned long long)generated.closed_auction_count);
  }
  return tools::kExitOk;
}
