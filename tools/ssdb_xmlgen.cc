// ssdb_xmlgen: emits a synthetic XMark-style auction document (the paper's
// §6 workload) to stdout or a file.
//
//   ssdb_xmlgen [--kb 1024] [--seed 42] [--out doc.xml] [--dtd]

#include <cstdio>
#include <string>

#include "tools/tool_util.h"
#include "util/file_util.h"
#include "xmark/generator.h"

int main(int argc, char** argv) {
  using namespace ssdb;
  tools::Args args(argc, argv);
  if (args.Has("--dtd")) {
    std::fputs(xmark::AuctionDtd().c_str(), stdout);
    return 0;
  }
  xmark::GeneratorOptions options;
  options.target_bytes = static_cast<uint64_t>(args.GetInt("--kb", 1024))
                         << 10;
  options.seed = args.GetInt("--seed", 42);
  auto generated = xmark::GenerateAuctionDocument(options);

  std::string out_path = args.Get("--out", "");
  if (out_path.empty()) {
    std::fwrite(generated.xml.data(), 1, generated.xml.size(), stdout);
  } else {
    if (auto s = WriteStringToFile(out_path, generated.xml); !s.ok()) {
      return tools::Fail(s);
    }
    std::fprintf(stderr,
                 "wrote %zu bytes to %s (%llu persons, %llu items, %llu "
                 "open auctions, %llu closed auctions)\n",
                 generated.xml.size(), out_path.c_str(),
                 (unsigned long long)generated.person_count,
                 (unsigned long long)generated.item_count,
                 (unsigned long long)generated.open_auction_count,
                 (unsigned long long)generated.closed_auction_count);
  }
  return 0;
}
