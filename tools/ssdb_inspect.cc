// ssdb_inspect: prints what the *server* can see in a database file —
// structure statistics and opaque share bytes. Useful both for operations
// and as a demonstration of the privacy boundary: nothing here reveals a
// tag name.
//
//   ssdb_inspect --db db.ssdb [--rows 5] [--p 83] [--e 1]

#include <cstdio>
#include <string>

#include "filter/server_filter.h"
#include "storage/table.h"
#include "tools/tool_util.h"
#include "util/hex.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace ssdb;
  tools::FlagSet flags("ssdb_inspect", "--db DB.ssdb");
  const std::string* db_flag =
      flags.String("db", "db.ssdb", "database (or slice) file to inspect");
  const uint32_t* rows_flag = flags.Uint("rows", 5, "sample rows to print");
  const uint32_t* p_flag = flags.Uint("p", 83, "field characteristic");
  const uint32_t* e_flag = flags.Uint("e", 1, "field extension degree");

  Status parsed = flags.Parse(argc, argv);
  if (flags.help_requested()) {
    std::fputs(flags.Help().c_str(), stdout);
    return tools::kExitOk;
  }
  if (!parsed.ok()) return tools::UsageError(flags, parsed);
  const std::string& db_path = *db_flag;
  uint32_t rows_to_show = *rows_flag;
  uint32_t p = *p_flag;
  uint32_t e = *e_flag;

  auto store = storage::DiskNodeStore::Open(db_path);
  if (!store.ok()) return tools::Fail(store.status());
  auto stats = (*store)->Stats();
  if (!stats.ok()) return tools::Fail(stats.status());

  std::printf("database: %s\n", db_path.c_str());
  std::printf("  nodes:            %llu\n",
              (unsigned long long)stats->node_count);
  std::printf("  data pages:       %s\n",
              HumanBytes(stats->data_bytes).c_str());
  std::printf("  index pages:      %s\n",
              HumanBytes(stats->index_bytes).c_str());
  std::printf("  file size:        %s\n",
              HumanBytes(stats->file_bytes).c_str());
  std::printf("  row payload:      %s (structure share %.1f%%)\n",
              HumanBytes(stats->payload_bytes).c_str(),
              100.0 * static_cast<double>(stats->structure_bytes) /
                  static_cast<double>(stats->payload_bytes));

  auto field = gf::Field::Make(p, e);
  if (!field.ok()) return tools::Fail(field.status());
  gf::Ring ring(*field);
  std::printf("  share size @F_%u: %zu bytes per node\n", field->q(),
              ring.serialized_bytes());

  auto root = (*store)->GetRoot();
  if (root.ok()) {
    std::printf("\nroot: pre=%u post=%u (subtree spans the whole tree)\n",
                root->pre, root->post);
  }

  std::printf("\nfirst %u rows as the server sees them:\n", rows_to_show);
  std::printf("%-8s %-8s %-8s %s\n", "pre", "post", "parent",
              "share (hex prefix)");
  for (uint32_t pre = 1; pre <= rows_to_show; ++pre) {
    auto row = (*store)->GetByPre(pre);
    if (!row.ok()) break;
    std::printf("%-8u %-8u %-8u %s...\n", row->pre, row->post, row->parent,
                HexEncode(row->share.substr(0, 12)).c_str());
  }
  std::printf(
      "\nNo tag names, no text, no keys: only positions and share bytes.\n");
  return tools::kExitOk;
}
