// ssdb_keygen: generates the client's key material — a random seed file and
// a tag-map file derived from a DTD (the paper's map + seed files, §5.1).
//
//   ssdb_keygen --dtd auction.dtd --map map.properties --seed seed.key
//               [--p 83] [--e 1] [--trie]

#include <cstdio>
#include <cstring>
#include <string>

#include "core/database.h"
#include "tools/tool_util.h"
#include "util/file_util.h"
#include "xmark/generator.h"

int main(int argc, char** argv) {
  using namespace ssdb;
  tools::FlagSet flags("ssdb_keygen", "--dtd DTD --map MAP --seed SEED");
  const std::string* dtd_path = flags.String(
      "dtd", "", "DTD to derive the tag map from (default: XMark auction)");
  const std::string* map_path =
      flags.String("map", "map.properties", "tag map file to write");
  const std::string* seed_path =
      flags.String("seed", "seed.key", "PRG seed file to write");
  const uint32_t* p_flag = flags.Uint("p", 83, "field characteristic");
  const uint32_t* e_flag = flags.Uint("e", 1, "field extension degree");
  const bool* trie_flag = flags.Bool("trie", "trie-encode tag values");

  Status parsed = flags.Parse(argc, argv);
  if (flags.help_requested()) {
    std::fputs(flags.Help().c_str(), stdout);
    return tools::kExitOk;
  }
  if (!parsed.ok()) return tools::UsageError(flags, parsed);
  uint32_t p = *p_flag;
  uint32_t e = *e_flag;
  bool trie = *trie_flag;

  auto field = gf::Field::Make(p, e);
  if (!field.ok()) return tools::Fail(field.status());

  std::string dtd_text;
  if (dtd_path->empty()) {
    std::fprintf(stderr,
                 "no --dtd given; using the built-in XMark auction DTD\n");
    dtd_text = xmark::AuctionDtd();
  } else {
    auto contents = ReadFileToString(*dtd_path);
    if (!contents.ok()) return tools::Fail(contents.status());
    dtd_text = *contents;
  }

  auto map = core::EncryptedXmlDatabase::TagMapForDtd(dtd_text, *field,
                                                      trie);
  if (!map.ok()) return tools::Fail(map.status());
  if (auto s = map->SaveToFile(*map_path); !s.ok()) return tools::Fail(s);

  prg::Seed seed = prg::Seed::Generate();
  if (auto s = seed.SaveToFile(*seed_path); !s.ok()) return tools::Fail(s);

  std::printf("wrote %s (%zu tags, F_%u^%u, spare value %u) and %s\n",
              map_path->c_str(), map->size(), p, e, map->SpareValue(),
              seed_path->c_str());
  std::printf("keep both files secret: together they are the database key.\n");
  return tools::kExitOk;
}
