// ssdb_router: serves a shard catalog over a unix socket — the untrusted
// routing tier of a multi-document corpus (DESIGN.md §10). It holds ONLY
// routing metadata (document ids, server groups, slice endpoints): no seed,
// no tag map, no shares ever pass through it. Clients fetch the catalog
// (or resolve a single document id), then open their own trusted
// shard::Router and talk to the share-slice servers directly.
//
//   ssdb_router --catalog catalog.json --socket /tmp/router.sock
//               [--threads n] [--poller epoll|poll] [--max-connections n]
//               [--idle-timeout s] [--io-timeout s]
//
// catalog.json: {"version":1,"documents":[{"id":"doc","group":0,
//               "slices":["/tmp/doc.s0.sock","/tmp/doc.s1.sock"]}]}
//
// The transport is the same concurrent server ssdb_server runs (worker
// pool, incremental poller, idle sweep) with no filter behind it: any
// share/structure op answers FailedPrecondition.

#include <csignal>
#include <cstdio>
#include <map>
#include <string>
#include <utility>

#include "gf/field.h"
#include "rpc/concurrent_server.h"
#include "rpc/socket_channel.h"
#include "shard/catalog.h"
#include "tools/tool_util.h"

int main(int argc, char** argv) {
  using namespace ssdb;
  tools::Args args(argc, argv);
  std::string catalog_path = args.Get("--catalog", "catalog.json");
  std::string socket_path = args.Get("--socket", "/tmp/ssdb-router.sock");
  uint32_t threads = args.GetInt("--threads", 0);
  std::string poller = args.Get("--poller", "auto");
  uint32_t max_connections = args.GetInt("--max-connections", 0);
  uint32_t idle_timeout = args.GetInt("--idle-timeout", 0);
  uint32_t io_timeout = args.GetInt("--io-timeout", 30);

  rpc::PollerBackend backend = rpc::PollerBackend::kDefault;
  if (poller == "epoll") {
    backend = rpc::PollerBackend::kEpoll;
  } else if (poller == "poll") {
    backend = rpc::PollerBackend::kPoll;
  } else if (poller != "auto") {
    std::fprintf(stderr, "error: --poller must be epoll, poll, or auto\n");
    return 1;
  }

  auto catalog = shard::ShardCatalog::Load(catalog_path);
  if (!catalog.ok()) return tools::Fail(catalog.status());

  // Pre-encode every reply once: the server then answers catalog ops with
  // a memcpy, and rpc/ stays independent of shard/.
  std::map<std::string, std::string> entries;
  for (const shard::ShardEntry& entry : catalog->entries()) {
    entries.emplace(entry.doc_id, shard::EncodeEntry(entry));
  }

  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  auto listener = rpc::UnixServerSocket::Listen(socket_path);
  if (!listener.ok()) return tools::Fail(listener.status());

  // The ring parameter only serializes share payloads, which a catalog
  // server never produces; any valid field works.
  auto field = gf::Field::Make(83, 1);
  if (!field.ok()) return tools::Fail(field.status());

  rpc::ConcurrentServerOptions options;
  options.threads = threads;
  options.log_connections = true;
  options.poller = backend;
  options.max_connections = max_connections;
  options.idle_timeout_seconds = static_cast<int>(idle_timeout);
  options.io_timeout_seconds = static_cast<int>(io_timeout);
  rpc::ConcurrentServer server(gf::Ring(*field), /*filter=*/nullptr,
                               std::move(*listener), options);
  server.SetCatalog(shard::EncodeCatalog(*catalog), std::move(entries));
  Status started = server.Start();
  if (!started.ok()) return tools::Fail(started);

  std::printf("routing %zu document(s) across %zu group(s) on %s, "
              "%zu threads, %s poller\n",
              catalog->size(), catalog->Groups().size(), socket_path.c_str(),
              server.threads(), server.poller_name());
  std::fflush(stdout);

  int signal_number = 0;
  sigwait(&signals, &signal_number);
  std::printf("signal %d: draining\n", signal_number);
  server.Shutdown();
  std::printf("served %llu connections (%llu closed)\n",
              (unsigned long long)server.connections_accepted(),
              (unsigned long long)server.connections_closed());
  return 0;
}
