// ssdb_router: serves a shard catalog over a unix socket — the untrusted
// routing tier of a multi-document corpus (DESIGN.md §10). It holds ONLY
// routing metadata (document ids, server groups, slice endpoints): no seed,
// no tag map, no shares ever pass through it. Clients fetch the catalog
// (or resolve a single document id), then open their own trusted
// shard::Router and talk to the share-slice servers directly.
//
//   ssdb_router --catalog catalog.json --socket /tmp/router.sock
//               [--threads n] [--poller epoll|poll] [--max-connections n]
//               [--idle-timeout s] [--io-timeout s] [--admin-port p]
//               [--probe-interval-ms 1000] [--probe-timeout 1]
//               [--rise 2] [--fall 3]
//
// catalog.json: {"version":1,"documents":[{"id":"doc","group":0,
//               "slices":["/tmp/doc.s0.sock","/tmp/doc.s1.sock"]}]}
//
// The transport is the same concurrent server ssdb_server runs (worker
// pool, incremental poller, idle sweep) with no filter behind it: any
// share/structure op answers FailedPrecondition.
//
// --admin-port additionally starts the control plane (DESIGN.md §11): a
// health Monitor kPing-probing every distinct slice endpoint in the
// catalog plus the router's own socket ("catalog"), and the JSON admin
// API on 127.0.0.1:<p> (0 = ephemeral; the bound port is printed) serving
// GET /v1/servers (monitor states), /v1/stats (transport snapshot), and
// /v1/catalog (topology summary). Metadata only — the admin surface never
// exposes shares, seeds, or document content.

#include <csignal>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "control/admin_http.h"
#include "control/monitor.h"
#include "gf/field.h"
#include "rpc/concurrent_server.h"
#include "rpc/socket_channel.h"
#include "shard/catalog.h"
#include "tools/tool_util.h"

int main(int argc, char** argv) {
  using namespace ssdb;
  tools::FlagSet flags("ssdb_router",
                       "--catalog CATALOG.json --socket SOCK [flags]");
  const std::string* catalog_path =
      flags.String("catalog", "catalog.json", "shard catalog to serve");
  const std::string* socket_path = flags.String(
      "socket", "/tmp/ssdb-router.sock", "unix socket to serve on");
  const uint32_t* threads =
      flags.Uint("threads", 0, "worker threads (0 = hardware concurrency)");
  const std::string* poller =
      flags.String("poller", "auto", "readiness backend: epoll, poll, auto");
  const uint32_t* max_connections =
      flags.Uint("max-connections", 0, "pause accepting at this many fds (0 = unlimited)");
  const uint32_t* idle_timeout =
      flags.Uint("idle-timeout", 0, "sweep connections idle this many seconds (0 = never)");
  const uint32_t* io_timeout =
      flags.Uint("io-timeout", 30, "per-connection read/write bound, seconds");
  const uint32_t* admin_port =
      flags.Uint("admin-port", 0,
                 "serve the JSON admin API + health monitor on 127.0.0.1:P "
                 "(0 = ephemeral; off unless given)");
  const uint32_t* probe_interval_ms =
      flags.Uint("probe-interval-ms", 1000, "health probe sweep cadence");
  const uint32_t* probe_timeout =
      flags.Uint("probe-timeout", 1, "per-probe dial/IO bound, seconds");
  const uint32_t* rise = flags.Uint(
      "rise", 2, "consecutive probe successes before recovering -> up");
  const uint32_t* fall =
      flags.Uint("fall", 3, "consecutive probe failures before suspect -> down");

  Status parsed = flags.Parse(argc, argv);
  if (flags.help_requested()) {
    std::fputs(flags.Help().c_str(), stdout);
    return tools::kExitOk;
  }
  if (!parsed.ok()) return tools::UsageError(flags, parsed);
  if (*rise == 0 || *fall == 0) {
    return tools::UsageError(flags, "--rise and --fall must be >= 1");
  }
  rpc::PollerBackend backend = rpc::PollerBackend::kDefault;
  if (*poller == "epoll") {
    backend = rpc::PollerBackend::kEpoll;
  } else if (*poller == "poll") {
    backend = rpc::PollerBackend::kPoll;
  } else if (*poller != "auto") {
    return tools::UsageError(flags, "--poller must be epoll, poll, or auto");
  }

  auto catalog = shard::ShardCatalog::Load(*catalog_path);
  if (!catalog.ok()) return tools::Fail(catalog.status());

  // Pre-encode every reply once: the server then answers catalog ops with
  // a memcpy, and rpc/ stays independent of shard/.
  std::map<std::string, std::string> entries;
  for (const shard::ShardEntry& entry : catalog->entries()) {
    entries.emplace(entry.doc_id, shard::EncodeEntry(entry));
  }

  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  auto listener = rpc::UnixServerSocket::Listen(*socket_path);
  if (!listener.ok()) return tools::Fail(listener.status());

  // The ring parameter only serializes share payloads, which a catalog
  // server never produces; any valid field works.
  auto field = gf::Field::Make(83, 1);
  if (!field.ok()) return tools::Fail(field.status());

  rpc::ConcurrentServerOptions options;
  options.threads = *threads;
  options.log_connections = true;
  options.poller = backend;
  options.max_connections = *max_connections;
  options.idle_timeout_seconds = static_cast<int>(*idle_timeout);
  options.io_timeout_seconds = static_cast<int>(*io_timeout);
  rpc::ConcurrentServer server(gf::Ring(*field), /*filter=*/nullptr,
                               std::move(*listener), options);
  server.SetCatalog(shard::EncodeCatalog(*catalog), std::move(entries));
  Status started = server.Start();
  if (!started.ok()) return tools::Fail(started);

  // Control plane (DESIGN.md §11): monitor every distinct slice endpoint
  // named by the catalog, plus this router's own socket as "catalog" —
  // the kPing probe is answered before the filter null-check, so the
  // metadata-only tier pings itself like any share server.
  std::vector<control::MonitorTarget> targets;
  std::set<std::string> seen;
  for (const shard::ShardEntry& entry : catalog->entries()) {
    for (size_t i = 0; i < entry.slices.size(); ++i) {
      if (!seen.insert(entry.slices[i]).second) continue;
      targets.push_back(control::MonitorTarget{
          entry.doc_id + "[" + std::to_string(i) + "]", entry.slices[i]});
    }
  }
  targets.push_back(control::MonitorTarget{"catalog", *socket_path});
  control::MonitorOptions mopts;
  mopts.probe_interval_ms = static_cast<int>(*probe_interval_ms);
  mopts.probe_timeout_seconds = static_cast<int>(*probe_timeout);
  mopts.rise = static_cast<int>(*rise);
  mopts.fall = static_cast<int>(*fall);
  control::Monitor monitor(std::move(targets), mopts);

  control::AdminHttpServer admin({/*bind_address=*/"127.0.0.1",
                                  /*port=*/static_cast<uint16_t>(*admin_port),
                                  /*max_request_bytes=*/4096,
                                  /*io_timeout_seconds=*/5});
  if (flags.Provided("admin-port")) {
    admin.Route("/v1/servers", [&monitor] { return monitor.ServersJson(); });
    admin.Route("/v1/stats", [&server] { return server.Snapshot().ToJson(); });
    std::string catalog_summary = catalog->SummaryJson();
    admin.Route("/v1/catalog", [catalog_summary] { return catalog_summary; });
    Status admin_up = admin.Start();
    if (!admin_up.ok()) return tools::Fail(admin_up);
    monitor.Start();
    std::printf("admin API on 127.0.0.1:%u (monitoring %zu server(s), "
                "probe every %ums, rise %u / fall %u)\n",
                admin.port(), monitor.Snapshot().size(), *probe_interval_ms,
                *rise, *fall);
  }

  std::printf("routing %zu document(s) across %zu group(s) on %s, "
              "%zu threads, %s poller\n",
              catalog->size(), catalog->Groups().size(), socket_path->c_str(),
              server.threads(), server.poller_name());
  std::fflush(stdout);

  int signal_number = 0;
  sigwait(&signals, &signal_number);
  std::printf("signal %d: draining\n", signal_number);
  monitor.Stop();
  admin.Shutdown();
  server.Shutdown();
  std::fputs(server.Snapshot().ToText().c_str(), stdout);
  return tools::kExitOk;
}
