#!/usr/bin/env python3
"""Bench regression guard (CI).

Collects the machine-readable ``BENCH_JSON {...}`` lines that bench_rpc,
bench_query_length, and bench_agg print into one merged artifact, then
compares throughput against a committed baseline:

    check_bench.py --out bench-results.json [--baseline bench/baseline.json]
                   [--threshold 0.30] [--strict] capture1.txt [capture2.txt ...]

Rows are matched on their identity keys (bench name plus every
non-metric field: servers, clients, transport, poller, idle_conns, ...).
Guarded metrics carry a direction: a matched row whose ``qps`` dropped —
or whose ``p99_ms`` rose — more than ``--threshold`` (default 30%) emits
a GitHub warning annotation; the check FAILS SOFT (exit 0) unless
--strict, because absolute numbers are noisy across runners — the
annotation is the signal, the artifact is the record. Rows with no
baseline counterpart are reported informationally; baseline rows with no
fresh counterpart (at a scale that ran) warn — that guard's coverage was
silently lost, usually by a renamed identity field or a dropped bench.

To refresh the baseline after an intentional change, copy the merged
artifact over bench/baseline.json (it is the same format). Each block
carries the ``scale`` it ran at and scale is part of row identity, so
regenerate under the same SSDB_BENCH_SCALE CI uses (0.05) — rows from
another scale simply won't match.
"""

import argparse
import json
import sys

# Fields that are measurements or machine facts, not identity;
# everything else in a row (plus the enclosing bench name/query/scale)
# identifies it across runs. worker_threads is hardware_concurrency —
# recorded in the artifact, but matching on it would unpair every row
# whose baseline came from a machine with a different core count.
METRIC_KEYS = {
    "qps", "p50_ms", "p99_ms", "ms", "wall_s", "queries", "wakes",
    "scanned_per_wake", "straggler_ms", "bytes", "results", "round_trips",
    "evals_simple", "evals_advanced", "batched_evals", "candidates",
    "worker_threads", "byte_ratio", "write_stalls", "buffered_peak",
    "frames_reused", "queue_depth_peak", "ops", "verify_overhead_ratio",
    "probes", "children", "reencode_ratio",
}

# Guarded metrics and the direction that is good: moving the wrong way by
# more than --threshold warns. qps is throughput (a drop regresses);
# p99_ms is tail latency (a rise regresses); verify_overhead_ratio is the
# verified-aggregation byte overhead (a rise regresses, DESIGN.md §9).
GUARDED_METRICS = {
    "qps": "higher",
    "p99_ms": "lower",
    "verify_overhead_ratio": "lower",
}

MARKER = "BENCH_JSON "


def collect(paths):
    """Parses every BENCH_JSON line in the given capture files."""
    benches = []
    for path in paths:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            for line in handle:
                line = line.strip()
                if not line.startswith(MARKER):
                    continue
                try:
                    benches.append(json.loads(line[len(MARKER):]))
                except json.JSONDecodeError as error:
                    print(f"::warning ::unparseable BENCH_JSON in {path}: "
                          f"{error}")
    return benches


def row_identity(bench, row):
    """Hashable identity of a row: bench-level context + non-metric fields."""
    context = tuple(sorted(
        (key, value) for key, value in bench.items()
        if key != "rows" and key not in METRIC_KEYS
        and not isinstance(value, (dict, list))))
    fields = tuple(sorted(
        (key, value) for key, value in row.items()
        if key not in METRIC_KEYS))
    return context + fields


def index_rows(benches):
    indexed = {}
    for bench in benches:
        for row in bench.get("rows", []):
            indexed[row_identity(bench, row)] = row
    return indexed


def describe(identity):
    return ", ".join(f"{key}={value}" for key, value in identity)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("captures", nargs="+",
                        help="bench stdout capture files")
    parser.add_argument("--baseline", default="bench/baseline.json")
    parser.add_argument("--out", default="bench-results.json")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="fractional qps drop that triggers a warning")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on regression instead of warning only")
    args = parser.parse_args()

    benches = collect(args.captures)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump({"results": benches}, handle, indent=2)
        handle.write("\n")
    total_rows = sum(len(b.get("rows", [])) for b in benches)
    print(f"collected {len(benches)} BENCH_JSON blocks "
          f"({total_rows} rows) -> {args.out}")
    if not benches:
        print("::warning ::no BENCH_JSON lines found in bench captures")
        return 0

    try:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = index_rows(json.load(handle).get("results", []))
    except FileNotFoundError:
        print(f"::warning ::no baseline at {args.baseline}; "
              "skipping regression check")
        return 0

    regressions = []
    compared = 0
    unmatched = 0
    fresh = index_rows(benches)
    for identity, row in fresh.items():
        if not any(metric in row for metric in GUARDED_METRICS):
            continue
        base = baseline.get(identity)
        if base is None:
            unmatched += 1
            continue
        matched = False
        for metric, direction in GUARDED_METRICS.items():
            if metric not in row or metric not in base or base[metric] <= 0:
                continue
            matched = True
            if direction == "higher":
                delta = 1.0 - row[metric] / base[metric]
                moved = "drop"
            else:
                delta = row[metric] / base[metric] - 1.0
                moved = "rise"
            if delta > args.threshold:
                regressions.append(
                    f"{metric} {base[metric]:.1f} -> {row[metric]:.1f} "
                    f"({delta:.0%} {moved}) for {describe(identity)}")
        if matched:
            compared += 1
        else:
            unmatched += 1

    print(f"compared {compared} rows against {args.baseline} "
          f"({unmatched} without a baseline counterpart)")

    # Guard coverage the other way: a baseline row no fresh capture matched
    # means a bench stopped emitting it (renamed identity field, deleted
    # case, bench dropped from CI) and its regression guard silently
    # evaporated. Warn loudly instead of losing coverage without a trace.
    # Only baseline rows whose scale actually ran are flagged, so running a
    # subset of scales locally does not cry wolf about the rest.
    fresh_scales = {dict(identity).get("scale") for identity in fresh}
    orphaned = [
        identity for identity, base in baseline.items()
        if identity not in fresh
        and any(metric in base for metric in GUARDED_METRICS)
        and dict(identity).get("scale") in fresh_scales
    ]
    for identity in orphaned:
        print(f"::warning ::baseline row has no fresh counterpart "
              f"(guard coverage lost): {describe(identity)}")
    if orphaned:
        print(f"{len(orphaned)} baseline row(s) lost guard coverage")
    for regression in regressions:
        print(f"::warning ::bench regression: {regression}")
    if not regressions:
        print("bench OK: no guarded metric moved beyond "
              f"{args.threshold:.0%} of baseline")
    return 1 if (regressions and args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())
