#!/usr/bin/env bash
# The README's 2-server quickstart (DESIGN.md §5), end to end, against a
# build directory: generate a document, produce key material, encode two
# share slices, serve each over its own unix socket, query through the
# concurrent fan-out session — and assert the answer matches a local
# single-server run of the same query.
#
#   tools/quickstart_2server.sh [BUILD_DIR]   # default: build

set -eu

build_dir="${1:-build}"
cd "$(dirname "$0")/.."
build_dir="$(cd "$build_dir" && pwd)"

work="$(mktemp -d /tmp/ssdb_quickstart.XXXXXX)"
pids=""
cleanup() {
  for pid in $pids; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$work"
}
trap cleanup EXIT

cd "$work"
query="/site//person"

"$build_dir/ssdb_xmlgen" --kb 64 --out doc.xml
"$build_dir/ssdb_keygen" --map map.properties --seed seed.key
"$build_dir/ssdb_encode" --map map.properties --seed seed.key \
    --xml doc.xml --out db.ssdb --servers=2

"$build_dir/ssdb_server" --db db.ssdb --servers=2 --share-index=0 \
    --socket "$work/s0.sock" &
pids="$pids $!"
"$build_dir/ssdb_server" --db db.ssdb --servers=2 --share-index=1 \
    --socket "$work/s1.sock" &
pids="$pids $!"

for _ in $(seq 50); do
  [ -S "$work/s0.sock" ] && [ -S "$work/s1.sock" ] && break
  sleep 0.1
done

"$build_dir/ssdb_query" --connect "$work/s0.sock,$work/s1.sock" \
    --map map.properties --seed seed.key "$query" | tee two_server.out

# Reference: the same query over the slice files opened locally as one
# 2-server fan-out must agree with a fresh single-server encode.
"$build_dir/ssdb_encode" --map map.properties --seed seed.key \
    --xml doc.xml --out db1.ssdb >/dev/null
"$build_dir/ssdb_query" --db db1.ssdb --map map.properties --seed seed.key \
    "$query" | tee one_server.out

# Aggregate the same query server-side (DESIGN.md §8): each of the two
# servers folds its aggregate-column slice and returns one masked word —
# the count must equal the number of pre values the fetch path returned.
"$build_dir/ssdb_query" --connect "$work/s0.sock,$work/s1.sock" \
    --map map.properties --seed seed.key --stats \
    "count($query)" | tee two_server_count.out

remote_pre="$(grep '  pre:' two_server.out)"
local_pre="$(grep '  pre:' one_server.out)"
if [ "$remote_pre" != "$local_pre" ]; then
  echo "MISMATCH: 2-server fan-out and single-server disagree"
  echo "  2-server: $remote_pre"
  echo "  1-server: $local_pre"
  exit 1
fi
if ! grep -q 'per-server trips:' two_server.out; then
  echo "MISSING: per-server round-trip stats not reported"
  exit 1
fi

agg_count="$(sed -n 's/.*count = \([0-9]*\) in.*/\1/p' two_server_count.out)"
result_count="$(sed -n 's/^  \([0-9]*\) result(s).*/\1/p' two_server.out)"
if [ -z "$agg_count" ] || [ "$agg_count" != "$result_count" ]; then
  echo "MISMATCH: count($query) = '$agg_count' but fetch returned" \
       "'$result_count' results"
  exit 1
fi
if ! grep -q 'result_size=1 (groups)' two_server_count.out; then
  echo "MISSING: aggregate --stats did not report result_size in groups"
  exit 1
fi

# --- mid-run UPDATE (DESIGN.md §12) -----------------------------------------
# Mutate the live deployment: re-tag one person through the 2-server
# fan-out (a two-phase commit across both slices), re-assert count() on
# the same servers, then re-tag it back and re-assert the original count.
person_pre="$(sed -n 's/^  pre: *\([0-9]*\).*/\1/p' two_server.out)"
if [ -z "$person_pre" ]; then
  echo "MISSING: could not pick a person pre from the fetch output"
  exit 1
fi

"$build_dir/ssdb_query" --connect "$work/s0.sock,$work/s1.sock" \
    --map map.properties --seed seed.key \
    --set "$person_pre privacy" "count($query)" | tee retag_count.out
if ! grep -q "update pre=$person_pre committed: version=1" retag_count.out; then
  echo "MISSING: UPDATE did not report a committed version-1 mutation"
  exit 1
fi
retag_count="$(sed -n 's/.*count = \([0-9]*\) in.*/\1/p' retag_count.out)"
if [ -z "$retag_count" ] || [ "$retag_count" != "$((agg_count - 1))" ]; then
  echo "MISMATCH: count($query) after UPDATE = '$retag_count', want" \
       "$((agg_count - 1))"
  exit 1
fi

"$build_dir/ssdb_query" --connect "$work/s0.sock,$work/s1.sock" \
    --map map.properties --seed seed.key \
    --set "$person_pre person" "count($query)" | tee restore_count.out
restore_count="$(sed -n 's/.*count = \([0-9]*\) in.*/\1/p' restore_count.out)"
if [ -z "$restore_count" ] || [ "$restore_count" != "$agg_count" ]; then
  echo "MISMATCH: count($query) after restoring the tag = '$restore_count'," \
       "want $agg_count"
  exit 1
fi

# --- 2-shard corpus (DESIGN.md §10) -----------------------------------------
# Grow the deployment into a corpus: a second document in its own server
# group, a shard catalog served by ssdb_router, and one corpus-wide count()
# through the router that must equal the sum of the per-document answers.
"$build_dir/ssdb_xmlgen" --kb 48 --seed 7 --out doc2.xml
"$build_dir/ssdb_encode" --map map.properties --seed seed.key \
    --xml doc2.xml --out db2.ssdb --servers=2

"$build_dir/ssdb_server" --db db2.ssdb --servers=2 --share-index=0 \
    --socket "$work/s2.sock" &
s2_pid=$!
pids="$pids $s2_pid"
"$build_dir/ssdb_server" --db db2.ssdb --servers=2 --share-index=1 \
    --socket "$work/s3.sock" &
pids="$pids $!"

cat > catalog.json <<EOF
{
  "version": 1,
  "documents": [
    {"id": "doc1", "group": 0, "slices": ["$work/s0.sock", "$work/s1.sock"]},
    {"id": "doc2", "group": 1, "slices": ["$work/s2.sock", "$work/s3.sock"]}
  ]
}
EOF
# --admin-port 0 also starts the health monitor (DESIGN.md §11); the
# ephemeral port is scraped from the startup line below.
"$build_dir/ssdb_router" --catalog catalog.json --socket "$work/router.sock" \
    --admin-port 0 --probe-interval-ms 200 --fall 2 > router.log &
pids="$pids $!"

for _ in $(seq 50); do
  [ -S "$work/s2.sock" ] && [ -S "$work/s3.sock" ] && \
      [ -S "$work/router.sock" ] && break
  sleep 0.1
done

# Per-document ground truth, straight at each group.
"$build_dir/ssdb_query" --connect "$work/s2.sock,$work/s3.sock" \
    --map map.properties --seed seed.key "count($query)" | tee doc2_count.out
doc2_count="$(sed -n 's/.*count = \([0-9]*\) in.*/\1/p' doc2_count.out)"

# Corpus-wide count() through the router-served catalog.
"$build_dir/ssdb_query" --router "$work/router.sock" --corpus \
    --map map.properties --seed seed.key "count($query)" | tee corpus_count.out
corpus_count="$(sed -n 's/.*count = \([0-9]*\) in.*/\1/p' corpus_count.out)"

if ! grep -q 'corpus: 2 doc(s), 2 group(s)' corpus_count.out; then
  echo "MISSING: corpus query did not report 2 documents in 2 groups"
  exit 1
fi
expected_corpus=$((agg_count + doc2_count))
if [ -z "$corpus_count" ] || [ "$corpus_count" != "$expected_corpus" ]; then
  echo "MISMATCH: corpus count($query) = '$corpus_count' but the shards" \
       "answered $agg_count + $doc2_count = $expected_corpus"
  exit 1
fi

# --- degraded mode + admin API (DESIGN.md §11) ------------------------------
# Kill one of doc2's share servers mid-run: the router's monitor must
# report it down on GET /v1/servers, corpus queries without --partial must
# fail (exit 1), and --partial must answer from doc1 alone while naming
# doc2 as missing.

admin_port=""
for _ in $(seq 50); do
  admin_port="$(sed -n 's/^admin API on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      router.log)"
  [ -n "$admin_port" ] && break
  sleep 0.1
done
if [ -z "$admin_port" ]; then
  echo "MISSING: router did not announce its admin API port"
  exit 1
fi

# curl-free admin client; prints the body of a 200 response.
admin_get() {
  python3 - "$admin_port" "$1" <<'EOF'
import http.client, sys
conn = http.client.HTTPConnection("127.0.0.1", int(sys.argv[1]), timeout=5)
conn.request("GET", sys.argv[2])
resp = conn.getresponse()
body = resp.read().decode()
if resp.status != 200:
    sys.exit(f"GET {sys.argv[2]} -> {resp.status}: {body}")
print(body)
EOF
}

# The three endpoints answer parseable JSON before anything is killed.
admin_get /v1/stats    | python3 -c 'import json,sys; json.load(sys.stdin)'
admin_get /v1/catalog  | python3 -c 'import json,sys; json.load(sys.stdin)'
admin_get /v1/servers  | python3 -c 'import json,sys; json.load(sys.stdin)'

# State of the monitor target for a given endpoint path.
server_state() {
  admin_get /v1/servers | python3 -c '
import json, sys
doc = json.load(sys.stdin)
states = {s["endpoint"]: s["state"] for s in doc["servers"]}
print(states.get(sys.argv[1], "?"))' "$1"
}

kill "$s2_pid"
state=""
for _ in $(seq 100); do
  state="$(server_state "$work/s2.sock")"
  [ "$state" = "down" ] && break
  sleep 0.1
done
if [ "$state" != "down" ]; then
  echo "MISSING: /v1/servers never reported $work/s2.sock down (last: $state)"
  exit 1
fi
if [ "$(server_state "$work/s0.sock")" != "up" ]; then
  echo "MISMATCH: untouched server $work/s0.sock is not up"
  exit 1
fi

# All-or-nothing corpus query fails with the uniform data-error status.
set +e
"$build_dir/ssdb_query" --router "$work/router.sock" --corpus \
    --map map.properties --seed seed.key "count($query)" \
    > strict_degraded.out 2>&1
strict_rc=$?
set -e
if [ "$strict_rc" != 1 ]; then
  echo "MISMATCH: corpus query with a dead group exited $strict_rc, want 1"
  cat strict_degraded.out
  exit 1
fi

# --partial answers from the surviving group and names the missing doc.
"$build_dir/ssdb_query" --router "$work/router.sock" --corpus --partial \
    --map map.properties --seed seed.key "count($query)" 2>partial.err \
    | tee partial_count.out
partial_count="$(sed -n 's/.*count = \([0-9]*\) in.*/\1/p' partial_count.out)"
if ! grep -q 'corpus: 1 doc(s), 1 group(s), PARTIAL' partial_count.out; then
  echo "MISSING: --partial did not report a 1-doc PARTIAL corpus"
  exit 1
fi
if ! grep -q 'missing doc2 (group 1)' partial_count.out; then
  echo "MISSING: --partial did not name doc2 as the missing document"
  exit 1
fi
if [ -z "$partial_count" ] || [ "$partial_count" != "$agg_count" ]; then
  echo "MISMATCH: partial corpus count = '$partial_count' but doc1 alone" \
       "answered $agg_count"
  exit 1
fi

# Uniform exit statuses (DESIGN.md §11): usage errors exit 2.
set +e
"$build_dir/ssdb_query" --no-such-flag >/dev/null 2>&1
usage_rc=$?
set -e
if [ "$usage_rc" != 2 ]; then
  echo "MISMATCH: unknown flag exited $usage_rc, want 2"
  exit 1
fi

echo "quickstart OK: 2-server fan-out matches single-server results," \
     "count() agrees ($agg_count), 2-shard corpus count agrees" \
     "($corpus_count = $agg_count + $doc2_count), degraded corpus" \
     "answers $partial_count with doc2 reported down"
