#!/usr/bin/env bash
# The README's 2-server quickstart (DESIGN.md §5), end to end, against a
# build directory: generate a document, produce key material, encode two
# share slices, serve each over its own unix socket, query through the
# concurrent fan-out session — and assert the answer matches a local
# single-server run of the same query.
#
#   tools/quickstart_2server.sh [BUILD_DIR]   # default: build

set -eu

build_dir="${1:-build}"
cd "$(dirname "$0")/.."
build_dir="$(cd "$build_dir" && pwd)"

work="$(mktemp -d /tmp/ssdb_quickstart.XXXXXX)"
pids=""
cleanup() {
  for pid in $pids; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$work"
}
trap cleanup EXIT

cd "$work"
query="/site//person"

"$build_dir/ssdb_xmlgen" --kb 64 --out doc.xml
"$build_dir/ssdb_keygen" --map map.properties --seed seed.key
"$build_dir/ssdb_encode" --map map.properties --seed seed.key \
    --xml doc.xml --out db.ssdb --servers=2

"$build_dir/ssdb_server" --db db.ssdb --servers=2 --share-index=0 \
    --socket "$work/s0.sock" &
pids="$pids $!"
"$build_dir/ssdb_server" --db db.ssdb --servers=2 --share-index=1 \
    --socket "$work/s1.sock" &
pids="$pids $!"

for _ in $(seq 50); do
  [ -S "$work/s0.sock" ] && [ -S "$work/s1.sock" ] && break
  sleep 0.1
done

"$build_dir/ssdb_query" --connect "$work/s0.sock,$work/s1.sock" \
    --map map.properties --seed seed.key "$query" | tee two_server.out

# Reference: the same query over the slice files opened locally as one
# 2-server fan-out must agree with a fresh single-server encode.
"$build_dir/ssdb_encode" --map map.properties --seed seed.key \
    --xml doc.xml --out db1.ssdb >/dev/null
"$build_dir/ssdb_query" --db db1.ssdb --map map.properties --seed seed.key \
    "$query" | tee one_server.out

# Aggregate the same query server-side (DESIGN.md §8): each of the two
# servers folds its aggregate-column slice and returns one masked word —
# the count must equal the number of pre values the fetch path returned.
"$build_dir/ssdb_query" --connect "$work/s0.sock,$work/s1.sock" \
    --map map.properties --seed seed.key --stats \
    "count($query)" | tee two_server_count.out

remote_pre="$(grep '  pre:' two_server.out)"
local_pre="$(grep '  pre:' one_server.out)"
if [ "$remote_pre" != "$local_pre" ]; then
  echo "MISMATCH: 2-server fan-out and single-server disagree"
  echo "  2-server: $remote_pre"
  echo "  1-server: $local_pre"
  exit 1
fi
if ! grep -q 'per-server trips:' two_server.out; then
  echo "MISSING: per-server round-trip stats not reported"
  exit 1
fi

agg_count="$(sed -n 's/.*count = \([0-9]*\) in.*/\1/p' two_server_count.out)"
result_count="$(sed -n 's/^  \([0-9]*\) result(s).*/\1/p' two_server.out)"
if [ -z "$agg_count" ] || [ "$agg_count" != "$result_count" ]; then
  echo "MISMATCH: count($query) = '$agg_count' but fetch returned" \
       "'$result_count' results"
  exit 1
fi
if ! grep -q 'result_size=1 (groups)' two_server_count.out; then
  echo "MISSING: aggregate --stats did not report result_size in groups"
  exit 1
fi

echo "quickstart OK: 2-server fan-out matches single-server results," \
     "count() agrees ($agg_count)"
