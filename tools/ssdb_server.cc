// ssdb_server: serves an encrypted database file over a unix socket — one
// untrusted server process of fig. 3. It loads no key material; it can only
// evaluate stored shares and hand out structure.
//
//   ssdb_server --db db.ssdb --socket /tmp/ssdb.sock [--p 83] [--e 1]
//               [--servers m --share-index i] [--threads n]
//               [--poller epoll|poll] [--max-connections n]
//               [--idle-timeout s] [--io-timeout s]
//               [--max-write-buffer bytes] [--admin-port p]
//
// In an m-server deployment (DESIGN.md §5) each host runs one ssdb_server
// over its own share slice; --servers/--share-index resolve the slice file
// from the base --db path (db.ssdb.s<i>of<m>), or point --db at the slice
// file directly. Serves any number of clients concurrently on a worker
// pool of --threads threads (default: hardware concurrency; DESIGN.md §7),
// keeps serving after clients disconnect, and drains gracefully on
// SIGINT/SIGTERM. The accept loop dispatches through an incremental
// interest set (--poller, default epoll where available); --max-connections
// pauses accepting at an fd budget instead of dying, and --idle-timeout
// sweeps connections idle past that many seconds. A client that stops
// reading never blocks a worker: its response tail is buffered and
// flushed as the socket drains, and --max-write-buffer bounds how much
// one such reader may pin before being closed (0 = unlimited).
//
// --admin-port starts the JSON admin API (DESIGN.md §11) on
// 127.0.0.1:<p> (0 = ephemeral; the bound port is printed) serving
// GET /v1/stats — the same ServerStats snapshot the shutdown log prints.
// Metadata only; shares never cross this surface.

#include <csignal>
#include <cstdio>
#include <string>

#include "control/admin_http.h"
#include "core/options.h"
#include "filter/server_filter.h"
#include "rpc/concurrent_server.h"
#include "rpc/socket_channel.h"
#include "storage/table.h"
#include "tools/tool_util.h"

int main(int argc, char** argv) {
  using namespace ssdb;
  tools::FlagSet flags("ssdb_server", "--db DB.ssdb --socket SOCK [flags]");
  const std::string* db_path =
      flags.String("db", "db.ssdb", "encrypted database (or slice base) file");
  const std::string* socket_path =
      flags.String("socket", "/tmp/ssdb.sock", "unix socket to serve on");
  const uint32_t* p = flags.Uint("p", 83, "field characteristic");
  const uint32_t* e = flags.Uint("e", 1, "field extension degree");
  const uint32_t* servers =
      flags.Uint("servers", 1, "share-split width m (resolves the slice file)");
  const uint32_t* share_index =
      flags.Uint("share-index", 0, "which slice this server holds (< m)");
  const uint32_t* threads =
      flags.Uint("threads", 0, "worker threads (0 = hardware concurrency)");
  const std::string* poller =
      flags.String("poller", "auto", "readiness backend: epoll, poll, auto");
  const uint32_t* max_connections =
      flags.Uint("max-connections", 0, "pause accepting at this many fds (0 = unlimited)");
  const uint32_t* idle_timeout =
      flags.Uint("idle-timeout", 0, "sweep connections idle this many seconds (0 = never)");
  const uint32_t* io_timeout =
      flags.Uint("io-timeout", 30, "per-connection read/write bound, seconds");
  const uint32_t* max_write_buffer =
      flags.Uint("max-write-buffer", 16u << 20,
                 "bytes a slow reader may pin before close (0 = unlimited)");
  const uint32_t* admin_port =
      flags.Uint("admin-port", 0,
                 "serve the JSON admin API on 127.0.0.1:P (0 = ephemeral; "
                 "off unless given)");

  Status parsed = flags.Parse(argc, argv);
  if (flags.help_requested()) {
    std::fputs(flags.Help().c_str(), stdout);
    return tools::kExitOk;
  }
  if (!parsed.ok()) return tools::UsageError(flags, parsed);
  if (*servers == 0 || *share_index >= *servers) {
    return tools::UsageError(flags, "--share-index must be < --servers");
  }
  rpc::PollerBackend backend = rpc::PollerBackend::kDefault;
  if (*poller == "epoll") {
    backend = rpc::PollerBackend::kEpoll;
  } else if (*poller == "poll") {
    backend = rpc::PollerBackend::kPoll;
  } else if (*poller != "auto") {
    return tools::UsageError(flags, "--poller must be epoll, poll, or auto");
  }
  std::string slice_path =
      core::ShareSlicePath(*db_path, *share_index, *servers);

  auto field = gf::Field::Make(*p, *e);
  if (!field.ok()) return tools::Fail(field.status());
  gf::Ring ring(*field);

  auto store = storage::DiskNodeStore::Open(slice_path);
  if (!store.ok()) return tools::Fail(store.status());
  auto count = (*store)->NodeCount();
  if (!count.ok()) return tools::Fail(count.status());

  // Block the termination signals before spawning server threads so they
  // are delivered to sigwait below, not to a worker.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  auto listener = rpc::UnixServerSocket::Listen(*socket_path);
  if (!listener.ok()) return tools::Fail(listener.status());

  filter::LocalServerFilter filter(ring, store->get());
  rpc::ConcurrentServerOptions options;
  options.threads = *threads;
  options.log_connections = true;
  options.poller = backend;
  options.max_connections = *max_connections;
  options.idle_timeout_seconds = static_cast<int>(*idle_timeout);
  options.io_timeout_seconds = static_cast<int>(*io_timeout);
  options.max_write_buffer = *max_write_buffer;
  rpc::ConcurrentServer server(ring, &filter, std::move(*listener), options);
  Status started = server.Start();
  if (!started.ok()) return tools::Fail(started);

  // Admin API (DESIGN.md §11): stats snapshots only — never shares.
  control::AdminHttpServer admin({/*bind_address=*/"127.0.0.1",
                                  /*port=*/static_cast<uint16_t>(*admin_port),
                                  /*max_request_bytes=*/4096,
                                  /*io_timeout_seconds=*/5});
  if (flags.Provided("admin-port")) {
    admin.Route("/v1/stats", [&server] { return server.Snapshot().ToJson(); });
    Status admin_up = admin.Start();
    if (!admin_up.ok()) return tools::Fail(admin_up);
    std::printf("admin API on 127.0.0.1:%u\n", admin.port());
  }

  if (*servers > 1) {
    std::printf("serving %s (slice %u/%u, %llu nodes) on %s, %zu threads, "
                "%s poller\n",
                slice_path.c_str(), *share_index, *servers,
                (unsigned long long)*count, socket_path->c_str(),
                server.threads(), server.poller_name());
  } else {
    std::printf("serving %s (%llu nodes) on %s, %zu threads, %s poller\n",
                slice_path.c_str(), (unsigned long long)*count,
                socket_path->c_str(), server.threads(), server.poller_name());
  }
  std::fflush(stdout);

  int signal_number = 0;
  sigwait(&signals, &signal_number);
  std::printf("signal %d: draining\n", signal_number);
  admin.Shutdown();
  server.Shutdown();
  // The shutdown log IS the admin /v1/stats snapshot, in text form.
  std::fputs(server.Snapshot().ToText().c_str(), stdout);
  return tools::kExitOk;
}
