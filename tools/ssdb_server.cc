// ssdb_server: serves an encrypted database file over a unix socket — the
// untrusted server process of fig. 3. It loads no key material; it can only
// evaluate stored shares and hand out structure.
//
//   ssdb_server --db db.ssdb --socket /tmp/ssdb.sock [--p 83] [--e 1]
//
// Serves one connection after another until killed (the prototype's model).

#include <csignal>
#include <cstdio>
#include <string>

#include "filter/server_filter.h"
#include "rpc/server.h"
#include "rpc/socket_channel.h"
#include "storage/table.h"
#include "tools/tool_util.h"

int main(int argc, char** argv) {
  using namespace ssdb;
  tools::Args args(argc, argv);
  std::string db_path = args.Get("--db", "db.ssdb");
  std::string socket_path = args.Get("--socket", "/tmp/ssdb.sock");
  uint32_t p = args.GetInt("--p", 83);
  uint32_t e = args.GetInt("--e", 1);

  auto field = gf::Field::Make(p, e);
  if (!field.ok()) return tools::Fail(field.status());
  gf::Ring ring(*field);

  auto store = storage::DiskNodeStore::Open(db_path);
  if (!store.ok()) return tools::Fail(store.status());
  auto count = (*store)->NodeCount();
  if (!count.ok()) return tools::Fail(count.status());

  auto listener = rpc::UnixServerSocket::Listen(socket_path);
  if (!listener.ok()) return tools::Fail(listener.status());

  std::printf("serving %s (%llu nodes) on %s\n", db_path.c_str(),
              (unsigned long long)*count, socket_path.c_str());

  filter::LocalServerFilter filter(ring, store->get());
  rpc::RpcServer server(ring, &filter);
  for (;;) {
    auto channel = (*listener)->Accept();
    if (!channel.ok()) return tools::Fail(channel.status());
    std::printf("client connected\n");
    Status s = server.Serve(channel->get());
    std::printf("client disconnected: %s\n", s.ToString().c_str());
  }
}
