// ssdb_server: serves an encrypted database file over a unix socket — one
// untrusted server process of fig. 3. It loads no key material; it can only
// evaluate stored shares and hand out structure.
//
//   ssdb_server --db db.ssdb --socket /tmp/ssdb.sock [--p 83] [--e 1]
//               [--servers m --share-index i] [--threads n]
//               [--poller epoll|poll] [--max-connections n]
//               [--idle-timeout s] [--io-timeout s]
//               [--max-write-buffer bytes]
//
// In an m-server deployment (DESIGN.md §5) each host runs one ssdb_server
// over its own share slice; --servers/--share-index resolve the slice file
// from the base --db path (db.ssdb.s<i>of<m>), or point --db at the slice
// file directly. Serves any number of clients concurrently on a worker
// pool of --threads threads (default: hardware concurrency; DESIGN.md §7),
// keeps serving after clients disconnect, and drains gracefully on
// SIGINT/SIGTERM. The accept loop dispatches through an incremental
// interest set (--poller, default epoll where available); --max-connections
// pauses accepting at an fd budget instead of dying, and --idle-timeout
// sweeps connections idle past that many seconds. A client that stops
// reading never blocks a worker: its response tail is buffered and
// flushed as the socket drains, and --max-write-buffer bounds how much
// one such reader may pin before being closed (0 = unlimited).

#include <csignal>
#include <cstdio>
#include <string>

#include "core/options.h"
#include "filter/server_filter.h"
#include "rpc/concurrent_server.h"
#include "rpc/socket_channel.h"
#include "storage/table.h"
#include "tools/tool_util.h"

int main(int argc, char** argv) {
  using namespace ssdb;
  tools::Args args(argc, argv);
  std::string db_path = args.Get("--db", "db.ssdb");
  std::string socket_path = args.Get("--socket", "/tmp/ssdb.sock");
  uint32_t p = args.GetInt("--p", 83);
  uint32_t e = args.GetInt("--e", 1);
  uint32_t servers = args.GetInt("--servers", 1);
  uint32_t share_index = args.GetInt("--share-index", 0);
  uint32_t threads = args.GetInt("--threads", 0);
  std::string poller = args.Get("--poller", "auto");
  uint32_t max_connections = args.GetInt("--max-connections", 0);
  uint32_t idle_timeout = args.GetInt("--idle-timeout", 0);
  uint32_t io_timeout = args.GetInt("--io-timeout", 30);
  uint32_t max_write_buffer = args.GetInt("--max-write-buffer", 16u << 20);

  if (servers == 0 || share_index >= servers) {
    std::fprintf(stderr, "error: --share-index must be < --servers\n");
    return 1;
  }
  rpc::PollerBackend backend = rpc::PollerBackend::kDefault;
  if (poller == "epoll") {
    backend = rpc::PollerBackend::kEpoll;
  } else if (poller == "poll") {
    backend = rpc::PollerBackend::kPoll;
  } else if (poller != "auto") {
    std::fprintf(stderr, "error: --poller must be epoll, poll, or auto\n");
    return 1;
  }
  db_path = core::ShareSlicePath(db_path, share_index, servers);

  auto field = gf::Field::Make(p, e);
  if (!field.ok()) return tools::Fail(field.status());
  gf::Ring ring(*field);

  auto store = storage::DiskNodeStore::Open(db_path);
  if (!store.ok()) return tools::Fail(store.status());
  auto count = (*store)->NodeCount();
  if (!count.ok()) return tools::Fail(count.status());

  // Block the termination signals before spawning server threads so they
  // are delivered to sigwait below, not to a worker.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  auto listener = rpc::UnixServerSocket::Listen(socket_path);
  if (!listener.ok()) return tools::Fail(listener.status());

  filter::LocalServerFilter filter(ring, store->get());
  rpc::ConcurrentServerOptions options;
  options.threads = threads;
  options.log_connections = true;
  options.poller = backend;
  options.max_connections = max_connections;
  options.idle_timeout_seconds = static_cast<int>(idle_timeout);
  options.io_timeout_seconds = static_cast<int>(io_timeout);
  options.max_write_buffer = max_write_buffer;
  rpc::ConcurrentServer server(ring, &filter, std::move(*listener), options);
  Status started = server.Start();
  if (!started.ok()) return tools::Fail(started);

  if (servers > 1) {
    std::printf("serving %s (slice %u/%u, %llu nodes) on %s, %zu threads, "
                "%s poller\n",
                db_path.c_str(), share_index, servers,
                (unsigned long long)*count, socket_path.c_str(),
                server.threads(), server.poller_name());
  } else {
    std::printf("serving %s (%llu nodes) on %s, %zu threads, %s poller\n",
                db_path.c_str(), (unsigned long long)*count,
                socket_path.c_str(), server.threads(), server.poller_name());
  }
  std::fflush(stdout);

  int signal_number = 0;
  sigwait(&signals, &signal_number);
  std::printf("signal %d: draining\n", signal_number);
  server.Shutdown();
  std::printf("served %llu connections (%llu closed)\n",
              (unsigned long long)server.connections_accepted(),
              (unsigned long long)server.connections_closed());
  std::printf("data plane: %llu write stalls, %llu peak buffered bytes, "
              "%llu budget closes, %llu peak queue depth, "
              "%llu frames pooled (%llu reused)\n",
              (unsigned long long)server.write_stalls(),
              (unsigned long long)server.bytes_buffered_peak(),
              (unsigned long long)server.write_budget_closed(),
              (unsigned long long)server.queue_depth_peak(),
              (unsigned long long)(server.frames_allocated() +
                                   server.frames_reused()),
              (unsigned long long)server.frames_reused());
  return 0;
}
