// The one flag/exit-status API shared by every ssdb_* tool (DESIGN.md
// §11): flags are DECLARED once — name, type, default, help — and the
// FlagSet derives parsing, --help text, and unknown-flag errors from the
// declarations, so the six tools stop hand-rolling divergent copies.
//
// Syntax: "--flag value" or "--flag=value"; boolean flags take no value;
// list flags may be repeated and/or comma-separated
// ("--connect a.sock,b.sock"). Anything not starting with "--" is a
// positional. An unknown "--flag" is a usage error.
//
// Exit statuses are uniform across the tools:
//   0  success
//   1  data/query/runtime failure        (Fail: "error: <Status>")
//   2  usage error — bad flag or input   (UsageError: ditto + help)

#ifndef SSDB_TOOLS_TOOL_UTIL_H_
#define SSDB_TOOLS_TOOL_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ssdb::tools {

inline constexpr int kExitOk = 0;
inline constexpr int kExitError = 1;
inline constexpr int kExitUsage = 2;

class FlagSet {
 public:
  // `tool` names the binary in help output; `synopsis` is the one-line
  // argument sketch printed after it (positionals and such).
  FlagSet(std::string tool, std::string synopsis)
      : tool_(std::move(tool)), synopsis_(std::move(synopsis)) {}

  // --- Declarations (call before Parse; returned pointers are stable) ---

  const std::string* String(const char* name, std::string default_value,
                            const char* help) {
    auto& flag = Add(name, Kind::kString, help,
                     default_value.empty() ? "" : "\"" + default_value + "\"");
    flag.string_value = std::move(default_value);
    return &flag.string_value;
  }

  const uint32_t* Uint(const char* name, uint32_t default_value,
                       const char* help) {
    auto& flag = Add(name, Kind::kUint, help, std::to_string(default_value));
    flag.uint_value = default_value;
    return &flag.uint_value;
  }

  // Boolean flags default to false and take no value on the command line.
  const bool* Bool(const char* name, const char* help) {
    auto& flag = Add(name, Kind::kBool, help, "false");
    return &flag.bool_value;
  }

  // Repeatable and/or comma-separated; default empty.
  const std::vector<std::string>* List(const char* name, const char* help) {
    auto& flag = Add(name, Kind::kList, help, "");
    return &flag.list_value;
  }

  // --- Parsing ----------------------------------------------------------

  // Fills the declared values from argv. InvalidArgument on an unknown
  // flag, a malformed value, or a value-less non-boolean flag. "--help"
  // anywhere short-circuits to OK with help_requested() set.
  Status Parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--help") == 0) {
        help_requested_ = true;
        return Status::OK();
      }
    }
    for (int i = 1; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positionals_.push_back(std::string(arg));
        continue;
      }
      std::string_view name = arg.substr(2);
      std::string_view inline_value;
      bool has_inline = false;
      size_t eq = name.find('=');
      if (eq != std::string_view::npos) {
        inline_value = name.substr(eq + 1);
        name = name.substr(0, eq);
        has_inline = true;
      }
      Flag* flag = Find(name);
      if (flag == nullptr) {
        return Status::InvalidArgument("unknown flag '--" + std::string(name) +
                                       "' (try --help)");
      }
      flag->provided = true;
      if (flag->kind == Kind::kBool) {
        if (has_inline) {
          return Status::InvalidArgument("--" + flag->name +
                                         " takes no value");
        }
        flag->bool_value = true;
        continue;
      }
      std::string value;
      if (has_inline) {
        value = std::string(inline_value);
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("--" + flag->name + " needs a value");
      }
      switch (flag->kind) {
        case Kind::kString:
          flag->string_value = std::move(value);
          break;
        case Kind::kUint: {
          char* end = nullptr;
          unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
          if (value.empty() || end == nullptr || *end != '\0') {
            return Status::InvalidArgument("--" + flag->name +
                                           " needs an unsigned integer, got '" +
                                           value + "'");
          }
          flag->uint_value = static_cast<uint32_t>(parsed);
          break;
        }
        case Kind::kList: {
          size_t start = 0;
          while (start <= value.size()) {
            size_t comma = value.find(',', start);
            if (comma == std::string::npos) comma = value.size();
            if (comma > start) {
              flag->list_value.push_back(value.substr(start, comma - start));
            }
            start = comma + 1;
          }
          break;
        }
        case Kind::kBool:
          break;  // handled above
      }
    }
    return Status::OK();
  }

  // --- Results ----------------------------------------------------------

  bool help_requested() const { return help_requested_; }
  // Whether the flag appeared on the command line (vs. keeping its
  // default) — how --admin-port 0 ("ephemeral port") differs from "no
  // admin server".
  bool Provided(std::string_view name) const {
    const Flag* flag = const_cast<FlagSet*>(this)->Find(name);
    return flag != nullptr && flag->provided;
  }
  const std::vector<std::string>& positionals() const { return positionals_; }

  // Generated from the declarations: usage line plus one aligned
  // "--name  help (default: x)" row per flag.
  std::string Help() const {
    std::string out = "usage: " + tool_;
    if (!synopsis_.empty()) out += " " + synopsis_;
    out += "\n\nflags:\n";
    size_t width = std::strlen("--help");
    for (const auto& flag : flags_) {
      width = std::max(width, flag->name.size() + 2 + ValueHint(flag->kind));
    }
    for (const auto& flag : flags_) {
      std::string left = "--" + flag->name;
      if (flag->kind != Kind::kBool) left += " V";
      out += "  " + left + std::string(width + 2 - left.size(), ' ');
      out += flag->help;
      if (!flag->default_text.empty()) {
        out += " (default: " + flag->default_text + ")";
      }
      out += "\n";
    }
    out += "  --help" + std::string(width + 2 - 6, ' ') +
           "print this help and exit\n";
    return out;
  }

 private:
  enum class Kind { kString, kUint, kBool, kList };

  struct Flag {
    std::string name;
    Kind kind;
    std::string help;
    std::string default_text;
    bool provided = false;
    std::string string_value;
    uint32_t uint_value = 0;
    bool bool_value = false;
    std::vector<std::string> list_value;
  };

  static size_t ValueHint(Kind kind) { return kind == Kind::kBool ? 0 : 2; }

  Flag& Add(const char* name, Kind kind, const char* help,
            std::string default_text) {
    flags_.push_back(std::make_unique<Flag>());
    Flag& flag = *flags_.back();
    flag.name = name;
    flag.kind = kind;
    flag.help = help;
    flag.default_text = std::move(default_text);
    return flag;
  }

  Flag* Find(std::string_view name) {
    for (auto& flag : flags_) {
      if (flag->name == name) return flag.get();
    }
    return nullptr;
  }

  std::string tool_;
  std::string synopsis_;
  std::vector<std::unique_ptr<Flag>> flags_;  // stable value addresses
  std::vector<std::string> positionals_;
  bool help_requested_ = false;
};

// Data/query/runtime failure: "error: <Status>" on stderr, exit 1.
inline int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return kExitError;
}

// Usage failure: same error line, plus the generated help, exit 2.
inline int UsageError(const FlagSet& flags, const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::fputs(flags.Help().c_str(), stderr);
  return kExitUsage;
}

inline int UsageError(const FlagSet& flags, const std::string& message) {
  return UsageError(flags, Status::InvalidArgument(message));
}

}  // namespace ssdb::tools

#endif  // SSDB_TOOLS_TOOL_UTIL_H_
