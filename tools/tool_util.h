// Minimal flag parsing + error reporting shared by the CLI tools. Flags are
// accepted as "--flag value" or "--flag=value"; list-valued flags may be
// repeated and/or comma-separated ("--connect a.sock,b.sock").

#ifndef SSDB_TOOLS_TOOL_UTIL_H_
#define SSDB_TOOLS_TOOL_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace ssdb::tools {

class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

  bool Has(const char* flag) const {
    const size_t flag_len = std::strlen(flag);
    for (int i = 1; i < argc_; ++i) {
      if (std::strcmp(argv_[i], flag) == 0) return true;
      if (std::strncmp(argv_[i], flag, flag_len) == 0 &&
          argv_[i][flag_len] == '=') {
        return true;
      }
    }
    return false;
  }

  std::string Get(const char* flag, const std::string& fallback) const {
    const size_t flag_len = std::strlen(flag);
    for (int i = 1; i < argc_; ++i) {
      if (std::strcmp(argv_[i], flag) == 0 && i + 1 < argc_) {
        return argv_[i + 1];
      }
      if (std::strncmp(argv_[i], flag, flag_len) == 0 &&
          argv_[i][flag_len] == '=') {
        return argv_[i] + flag_len + 1;
      }
    }
    return fallback;
  }

  uint32_t GetInt(const char* flag, uint32_t fallback) const {
    std::string value = Get(flag, "");
    if (value.empty()) return fallback;
    return static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
  }

  // Arguments that are neither flags nor flag values. `boolean_flags` names
  // the flags that take no value; every other "--flag" consumes the next
  // argument (unless written as "--flag=value").
  std::vector<std::string> Positionals(
      const std::vector<std::string>& boolean_flags) const {
    std::vector<std::string> out;
    for (int i = 1; i < argc_; ++i) {
      if (std::strncmp(argv_[i], "--", 2) != 0) {
        out.push_back(argv_[i]);
        continue;
      }
      bool is_boolean = false;
      for (const std::string& flag : boolean_flags) {
        if (flag == argv_[i]) {
          is_boolean = true;
          break;
        }
      }
      if (!is_boolean && std::strchr(argv_[i], '=') == nullptr) ++i;
    }
    return out;
  }

  // Every occurrence of the flag, with comma-separated values split out.
  std::vector<std::string> GetList(const char* flag) const {
    const size_t flag_len = std::strlen(flag);
    std::vector<std::string> values;
    auto split_into = [&values](const std::string& value) {
      size_t start = 0;
      while (start <= value.size()) {
        size_t comma = value.find(',', start);
        if (comma == std::string::npos) comma = value.size();
        if (comma > start) values.push_back(value.substr(start, comma - start));
        start = comma + 1;
      }
    };
    for (int i = 1; i < argc_; ++i) {
      if (std::strcmp(argv_[i], flag) == 0 && i + 1 < argc_) {
        split_into(argv_[i + 1]);
      } else if (std::strncmp(argv_[i], flag, flag_len) == 0 &&
                 argv_[i][flag_len] == '=') {
        split_into(argv_[i] + flag_len + 1);
      }
    }
    return values;
  }

 private:
  int argc_;
  char** argv_;
};

inline int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace ssdb::tools

#endif  // SSDB_TOOLS_TOOL_UTIL_H_
