// Minimal flag parsing + error reporting shared by the CLI tools.

#ifndef SSDB_TOOLS_TOOL_UTIL_H_
#define SSDB_TOOLS_TOOL_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/status.h"

namespace ssdb::tools {

class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

  bool Has(const char* flag) const {
    for (int i = 1; i < argc_; ++i) {
      if (std::strcmp(argv_[i], flag) == 0) return true;
    }
    return false;
  }

  std::string Get(const char* flag, const std::string& fallback) const {
    for (int i = 1; i + 1 < argc_; ++i) {
      if (std::strcmp(argv_[i], flag) == 0) return argv_[i + 1];
    }
    return fallback;
  }

  uint32_t GetInt(const char* flag, uint32_t fallback) const {
    std::string value = Get(flag, "");
    if (value.empty()) return fallback;
    return static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
  }

 private:
  int argc_;
  char** argv_;
};

inline int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace ssdb::tools

#endif  // SSDB_TOOLS_TOOL_UTIL_H_
